"""The durable delta journal: framing, fsync, faults, crash recovery.

The contract under test, mirroring :mod:`repro.service.journal`:

* every record is length- and CRC-framed; scanning a clean journal yields
  exactly the records written, in order, with consecutive delta versions
  anchored on snapshots;
* an incomplete frame at end-of-file is a **torn tail** — truncated, never
  folded — while a *complete* frame that fails its checksum (or framing, or
  version continuity) is **corruption** and recovery refuses with the
  record index, byte offset and reason instead of folding a wrong catalog;
* recovery = latest snapshot + folded deltas, adopted without re-deciding
  a single dominance pair, and bit-identical to a fresh serial analyzer;
  recovery is read-only by default, so a crash *during* recovery changes
  nothing and a second recovery lands identically;
* injected I/O faults degrade explicitly: transient errors are retried
  with rollback, persistent errors leave the journal in the ``lagging``
  mode surfaced by :meth:`DeltaJournal.stats` and healed by the next
  checkpoint, and a mid-write crash freezes the file exactly as a dead
  process would leave it.
"""

from __future__ import annotations

import json
import os
import zlib

import pytest

from repro.cli import main
from repro.engine import CatalogAnalyzer
from repro.exceptions import ReproError
from repro.relalg import parse_expression
from repro.relational import RelationName
from repro.service import (
    FSYNC_POLICIES,
    DeltaJournal,
    FaultyFile,
    JournalCorruption,
    JournalError,
    JournalWriteError,
    SimulatedCrash,
    flip_bit,
    recover_service,
    run_traffic,
    scan_journal,
    verify_recovery,
)
from repro.service.journal import catalog_text, view_text
from repro.views import View
from repro.workloads import (
    IoFault,
    SchemaSpec,
    crash_schedule,
    fault_schedule,
    random_schema,
    traffic_mix,
    view_catalog,
)


@pytest.fixture
def base_catalog(split_view, joined_view):
    return {"Joined": joined_view, "Split": split_view}


@pytest.fixture
def extra_views(q_schema):
    weak = View(
        [(parse_expression("pi{A}(q)", q_schema), RelationName("Y1", "A"))], q_schema
    )
    weak_b = View(
        [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))], q_schema
    )
    return [weak, weak_b]


def journal_chain(path, base_catalog, edits, **journal_kwargs):
    """Journal a chain of edits exactly as the service does.

    ``edits`` is a list of ``("add", name, view)`` / ``("drop", name, None)``
    tuples.  Returns the per-version analyzers, index 0 being the base.
    """

    journal = DeltaJournal(path, **journal_kwargs)
    current = CatalogAnalyzer(base_catalog)
    states = [current]
    journal.begin(catalog_text(current.views), current.snapshot(0))
    for version, (op, name, view) in enumerate(edits, start=1):
        derived = (
            current.with_view(name, view) if op == "add" else current.without_view(name)
        )
        delta = derived.diff(current, version=version)
        journal.record_edit(
            version=version,
            kind="add_view" if op == "add" else "drop_view",
            subject=name,
            view_doc=view_text(name, view) if op == "add" else None,
            delta=delta,
            checkpoint_fn=lambda d=derived, v=version: (
                catalog_text(d.views),
                d.snapshot(v),
            ),
        )
        current = derived
        states.append(current)
    journal.close()
    return journal, states


def assert_recovered_matches(result, analyzer, version):
    assert result.version == version
    snapshot = analyzer.snapshot(version)
    recovered = result.analyzer.snapshot(version)
    assert recovered.names == snapshot.names
    assert recovered.nonredundant_core == snapshot.nonredundant_core
    assert recovered.equivalence_classes == snapshot.equivalence_classes
    assert recovered.dominance == snapshot.dominance


class TestFramingAndScan:
    def test_clean_journal_scans_to_written_records(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        _, states = journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0]), ("drop", "Y", None)],
            fsync="off",
            snapshot_every=0,
        )
        scan = scan_journal(path)
        assert [(r.type, r.version) for r in scan.records] == [
            ("snapshot", 0),
            ("delta", 1),
            ("delta", 2),
        ]
        assert scan.tail_bytes == 0 and scan.tail_reason == ""
        assert scan.total_bytes == os.path.getsize(path)
        # Offsets tile the file exactly: framing admits no slack.
        assert scan.records[0].offset == 0
        for prev, record in zip(scan.records, scan.records[1:]):
            assert record.offset == prev.offset + prev.length

    def test_record_frame_is_length_crc_payload(self, tmp_path, base_catalog):
        path = str(tmp_path / "j.jsonl")
        journal_chain(path, base_catalog, [], fsync="off")
        with open(path, "rb") as handle:
            raw = handle.read()
        length_field, crc_field, rest = raw.split(b":", 2)
        body = rest[: int(length_field)]
        assert int(crc_field, 16) == zlib.crc32(body) & 0xFFFFFFFF
        assert rest[int(length_field) : int(length_field) + 1] == b"\n"
        assert json.loads(body)["type"] == "snapshot"

    def test_every_truncation_is_torn_or_empty_never_corrupt(
        self, tmp_path, base_catalog, extra_views
    ):
        """Cutting a clean journal at ANY byte yields a torn tail, not
        corruption — the crash-consistency guarantee of append-only framing."""

        path = str(tmp_path / "j.jsonl")
        journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0])],
            fsync="off",
            snapshot_every=0,
        )
        with open(path, "rb") as handle:
            data = handle.read()
        scan = scan_journal(path)
        boundaries = {r.offset + r.length for r in scan.records} | {0}
        cut_path = str(tmp_path / "cut.jsonl")
        for cut in range(len(data)):
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            partial = scan_journal(cut_path)
            if cut in boundaries:
                assert partial.tail_bytes == 0, f"boundary cut {cut} reported a tail"
            else:
                assert partial.tail_bytes > 0, f"mid-record cut {cut} not torn"
                assert partial.tail_offset + partial.tail_bytes == cut

    def test_bit_flip_is_corruption_with_diagnostics(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0]), ("add", "Z", extra_views[1])],
            fsync="off",
            snapshot_every=0,
        )
        target = scan_journal(path).records[1]
        flip_bit(path, target.offset + target.length // 2, bit=3)
        with pytest.raises(JournalCorruption) as excinfo:
            recover_service(path)
        assert excinfo.value.record_index == target.index
        assert excinfo.value.offset == target.offset
        assert "checksum mismatch" in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)

    def test_version_gap_is_corruption(self, tmp_path, base_catalog, extra_views):
        path = str(tmp_path / "j.jsonl")
        journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0]), ("add", "Z", extra_views[1])],
            fsync="off",
            snapshot_every=0,
        )
        scan = scan_journal(path)
        with open(path, "rb") as handle:
            data = handle.read()
        # Drop the interior delta (version 1), keeping the version-2 record:
        # a silent gap in the fold, which the scanner must refuse.
        v1 = scan.records[1]
        gapped = data[: v1.offset] + data[v1.offset + v1.length :]
        gap_path = str(tmp_path / "gap.jsonl")
        with open(gap_path, "wb") as handle:
            handle.write(gapped)
        with pytest.raises(JournalCorruption, match="version"):
            scan_journal(gap_path)

    def test_empty_journal_refuses_recovery(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "wb").close()
        with pytest.raises(JournalError):
            recover_service(path)


class TestFsyncPolicies:
    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_policy_fsync_counts(self, tmp_path, base_catalog, extra_views, policy):
        path = str(tmp_path / f"{policy}.jsonl")
        journal, _ = journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0]), ("add", "Z", extra_views[1])],
            fsync=policy,
            snapshot_every=0,
            batch_records=2,
        )
        stats = journal.stats()
        assert stats["records"] == 3
        if policy == "per_record":
            assert stats["fsyncs"] == 3
        elif policy == "off":
            assert stats["fsyncs"] == 0
        else:  # batched: one per full batch of 2, plus the final sync on close
            assert 0 < stats["fsyncs"] < 3

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="fsync"):
            DeltaJournal(str(tmp_path / "j.jsonl"), fsync="always")


class TestRecovery:
    def test_recovery_is_bit_identical_and_reuses_decisions(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        _, states = journal_chain(
            path,
            base_catalog,
            [
                ("add", "Y", extra_views[0]),
                ("add", "Z", extra_views[1]),
                ("drop", "Y", None),
            ],
            fsync="off",
            snapshot_every=0,
        )
        result = recover_service(path)
        assert result.deltas_folded == 3 and result.snapshots_seen == 1
        assert_recovered_matches(result, states[-1], 3)
        assert result.verify() == []
        # The adopted matrix was installed, not re-searched: every pairwise
        # decision is already present before anything is recomputed.
        reused, needed = result.analyzer.decision_reuse()
        assert needed == 0 or reused == needed

    def test_recovery_anchors_on_latest_snapshot(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        _, states = journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0]), ("add", "Z", extra_views[1])],
            fsync="off",
            snapshot_every=1,  # checkpoint after every delta
        )
        scan = scan_journal(path)
        snapshots = [r for r in scan.records if r.type == "snapshot"]
        assert len(snapshots) >= 2
        result = recover_service(path)
        # Only deltas after the last snapshot are folded.
        last_snapshot_index = snapshots[-1].index
        assert result.deltas_folded == sum(
            1 for r in scan.records[last_snapshot_index + 1 :] if r.type == "delta"
        )
        assert_recovered_matches(result, states[-1], 2)

    def test_torn_tail_truncated_never_folded_and_read_only(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        _, states = journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0]), ("add", "Z", extra_views[1])],
            fsync="off",
            snapshot_every=0,
        )
        scan = scan_journal(path)
        with open(path, "rb") as handle:
            data = handle.read()
        last = scan.records[-1]
        torn = data[: last.offset + last.length // 2]
        torn_path = str(tmp_path / "torn.jsonl")
        with open(torn_path, "wb") as handle:
            handle.write(torn)
        result = recover_service(torn_path)
        # The half-written version-2 record was truncated, never folded.
        assert result.truncated_tail_bytes == len(torn) - last.offset
        assert "end-of-file" in result.tail_reason
        assert_recovered_matches(result, states[1], 1)
        # Read-only by default: the torn bytes are still on disk, so a crash
        # during recovery loses nothing and a second recovery agrees.
        assert os.path.getsize(torn_path) == len(torn)
        again = recover_service(torn_path)
        assert again.version == result.version and again.state == result.state

    def test_repair_truncates_tail_in_place(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        journal_chain(
            path,
            base_catalog,
            [("add", "Y", extra_views[0])],
            fsync="off",
            snapshot_every=0,
        )
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-7])
        result = recover_service(path, repair=True)
        assert result.repaired
        assert result.truncated_tail_bytes > 0
        # The torn prefix is gone and the file scans clean.
        assert os.path.getsize(path) == (len(data) - 7) - result.truncated_tail_bytes
        clean = scan_journal(path)
        assert clean.tail_bytes == 0


class TestFaultInjection:
    def test_torn_write_raises_simulated_crash_and_freezes_file(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        fault = IoFault("torn", write_index=1, partial_fraction=0.5)
        journal = DeltaJournal(
            path,
            fsync="off",
            snapshot_every=0,
            wrap=lambda handle: FaultyFile(handle, [fault]),
        )
        current = CatalogAnalyzer(base_catalog)
        journal.begin(catalog_text(current.views), current.snapshot(0))
        derived = current.with_view("Y", extra_views[0])
        delta = derived.diff(current, version=1)
        checkpoint_fn = lambda: (catalog_text(derived.views), derived.snapshot(1))
        with pytest.raises(SimulatedCrash):
            journal.record_edit(
                version=1, kind="add_view", subject="Y",
                view_doc=view_text("Y", extra_views[0]), delta=delta,
                checkpoint_fn=checkpoint_fn,
            )
        assert journal.crashed
        # The file holds record 0 plus a strict prefix of record 1.
        scan = scan_journal(path)
        assert [r.version for r in scan.records] == [0]
        assert scan.tail_bytes > 0
        # Further appends are dropped (the process is "dead"), and counted.
        assert journal.record_edit(
            version=1, kind="add_view", subject="Y",
            view_doc=view_text("Y", extra_views[0]), delta=delta,
            checkpoint_fn=lambda: (catalog_text(derived.views), derived.snapshot(1)),
        ) is False
        assert journal.stats()["dropped_after_crash"] >= 1

    def test_transient_eio_is_retried_and_rolled_back(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        fault = IoFault("eio", write_index=1)
        sleeps = []
        journal = DeltaJournal(
            path,
            fsync="off",
            snapshot_every=0,
            retries=2,
            backoff_s=0.01,
            sleep_fn=sleeps.append,
            wrap=lambda handle: FaultyFile(handle, [fault]),
        )
        current = CatalogAnalyzer(base_catalog)
        journal.begin(catalog_text(current.views), current.snapshot(0))
        derived = current.with_view("Y", extra_views[0])
        delta = derived.diff(current, version=1)
        assert journal.record_edit(
            version=1, kind="add_view", subject="Y",
            view_doc=view_text("Y", extra_views[0]), delta=delta,
            checkpoint_fn=lambda: (catalog_text(derived.views), derived.snapshot(1)),
        ) is True
        journal.close()
        stats = journal.stats()
        assert stats["retries"] >= 1 and not stats["lagging"]
        assert sleeps and sleeps[0] == pytest.approx(0.01)
        # The rolled-back partial write left no trace: the journal is clean.
        result = recover_service(path)
        assert_recovered_matches(result, derived, 1)

    def test_persistent_enospc_enters_lagging_and_checkpoint_heals(
        self, tmp_path, base_catalog, extra_views
    ):
        path = str(tmp_path / "j.jsonl")
        fault = IoFault("enospc", write_index=1, persistent=True)
        faulty = {}

        def wrap(handle):
            faulty["file"] = FaultyFile(handle, [fault])
            return faulty["file"]

        journal = DeltaJournal(
            path,
            fsync="off",
            snapshot_every=0,
            retries=1,
            backoff_s=0.0,
            sleep_fn=lambda _s: None,
            wrap=wrap,
        )
        current = CatalogAnalyzer(base_catalog)
        journal.begin(catalog_text(current.views), current.snapshot(0))
        derived = current.with_view("Y", extra_views[0])
        delta = derived.diff(current, version=1)
        durable = journal.record_edit(
            version=1, kind="add_view", subject="Y",
            view_doc=view_text("Y", extra_views[0]), delta=delta,
            checkpoint_fn=lambda: (catalog_text(derived.views), derived.snapshot(1)),
        )
        assert durable is False
        stats = journal.stats()
        assert stats["lagging"] and stats["lag_from_version"] == 1
        # The device recovers (drop the injected faults, sticky included);
        # the next edit's checkpoint re-anchors and heals the lag.
        faulty["file"]._faults.clear()
        faulty["file"]._sticky = None
        derived2 = derived.with_view("Z", extra_views[1])
        delta2 = derived2.diff(derived, version=2)
        assert journal.record_edit(
            version=2, kind="add_view", subject="Z",
            view_doc=view_text("Z", extra_views[1]), delta=delta2,
            checkpoint_fn=lambda: (catalog_text(derived2.views), derived2.snapshot(2)),
        ) is True
        journal.close()
        healed = journal.stats()
        assert not healed["lagging"] and healed["heals"] >= 1
        # Recovery lands on the healed snapshot: nothing silently wrong.
        result = recover_service(path)
        assert_recovered_matches(result, derived2, 2)

    def test_fault_schedules_are_seeded_and_valid(self):
        schedule = fault_schedule(records=20, faults=5, seed=3)
        assert schedule == fault_schedule(records=20, faults=5, seed=3)
        assert len(schedule) == 5
        assert all(1 <= fault.write_index <= 20 for fault in schedule)
        assert len({fault.write_index for fault in schedule}) == 5
        crashes = crash_schedule(edits=10, crashes=4, seed=1)
        assert crashes == crash_schedule(edits=10, crashes=4, seed=1)
        assert 0 in crashes and 10 in crashes


class TestServiceIntegration:
    def make_traffic(self, seed=5, requests=40, edit_rate=0.3):
        schema = random_schema(
            SchemaSpec(relations=4, arity=2, universe_size=5), seed=seed
        )
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2,
            atoms_per_query=2, seed=seed,
        )
        events = traffic_mix(
            schema, catalog, requests=requests, edit_rate=edit_rate, seed=seed
        )
        return catalog, events

    def test_journaled_service_recovers_bit_identically(self, tmp_path):
        catalog, events = self.make_traffic()
        path = str(tmp_path / "service.jsonl")
        journal = DeltaJournal(path, fsync="batched", snapshot_every=4)
        lane = run_traffic(catalog, events, journal=journal)
        assert not lane["verdict"]["mismatches"]
        stats = lane["journal"]
        assert stats["records"] >= 1 and stats["snapshot_records"] >= 1
        metrics = lane["metrics"]
        # The metrics snapshot predates close()'s final fsync; everything
        # else agrees with the journal's own final stats.
        assert metrics.journal["records"] == stats["records"]
        assert metrics.journal["bytes"] == stats["bytes"]
        assert metrics.journal["fsyncs"] <= stats["fsyncs"]
        assert metrics.to_dict()["journal"]["records"] == stats["records"]
        result = recover_service(path)
        assert result.version == metrics.edits
        history = lane["history"]
        assert dict(result.views) == dict(history[result.version])
        assert result.verify() == []

    def test_cache_warming_counts_prefetches_and_hits(self, tmp_path):
        catalog, events = self.make_traffic(edit_rate=0.25)
        lane = run_traffic(catalog, events, cache_warm=True)
        metrics = lane["metrics"]
        edits = metrics.edits
        if edits:
            assert metrics.warm_prefetches > 0
        assert metrics.warm_hits <= metrics.served
        warmed = metrics.to_dict()["warming"]
        assert warmed == {
            "prefetches": metrics.warm_prefetches,
            "warm_hits": metrics.warm_hits,
            "errors": metrics.warm_errors,
        }

    def test_verify_recovery_harness(self, tmp_path):
        catalog, events = self.make_traffic(requests=30)
        report = verify_recovery(
            catalog, events, crash_points=3, seed=2, workdir=str(tmp_path)
        )
        assert report["mismatches"] == []
        assert report["crash_points_checked"] == 3
        assert report["torn_tails_truncated"] >= 1
        assert report["double_recoveries_checked"] >= 1
        assert report["corruption_refused"] is True
        assert "checksum mismatch" in report["corruption_diagnostic"] or (
            "corrupted" in report["corruption_diagnostic"]
        )
        lanes = report["fault_lanes"]
        assert set(lanes) == {"torn", "eio_transient", "enospc_persistent"}
        assert lanes["torn"]["journal"]["crashed"]
        assert lanes["eio_transient"]["journal"]["retries"] >= 1
        assert lanes["enospc_persistent"]["journal"]["lagging"]


class TestRecoveryProperty:
    def test_recovery_at_every_crash_index_of_random_sequences(
        self, q_schema, base_catalog, extra_views, tmp_path
    ):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        pool = list(extra_views) + [
            extra_views[0].renamed({"Y1": "P1"}),
        ]

        ops = st.lists(
            st.tuples(st.sampled_from(["add", "drop"]), st.integers(0, len(pool) - 1)),
            min_size=1,
            max_size=4,
        )

        counter = {"n": 0}

        @settings(max_examples=8, deadline=None)
        @given(ops=ops, snapshot_every=st.sampled_from([0, 1, 2]))
        def check(ops, snapshot_every):
            counter["n"] += 1
            path = str(tmp_path / f"prop_{counter['n']}.jsonl")
            edits = []
            added = []
            for op, index in ops:
                if op == "add" or not added:
                    name = f"T{len(edits)}x"
                    edits.append(("add", name, pool[index]))
                    added.append(name)
                else:
                    edits.append(("drop", added.pop(index % len(added)), None))
            _, states = journal_chain(
                path, base_catalog, edits, fsync="off", snapshot_every=snapshot_every
            )
            scan = scan_journal(path)
            with open(path, "rb") as handle:
                data = handle.read()
            # Crash at EVERY version: cut cleanly after the last record of
            # that version, plus a torn cut into the next record.
            for version, analyzer in enumerate(states):
                eligible = [r for r in scan.records if r.version <= version]
                cut = eligible[-1].offset + eligible[-1].length
                cut_path = str(tmp_path / "cut.jsonl")
                with open(cut_path, "wb") as handle:
                    handle.write(data[:cut])
                result = recover_service(cut_path)
                assert_recovered_matches(result, analyzer, version)
                nxt = [r for r in scan.records if r.offset == cut]
                if nxt:
                    with open(cut_path, "wb") as handle:
                        handle.write(data[: cut + max(1, nxt[0].length // 3)])
                    torn = recover_service(cut_path)
                    assert torn.truncated_tail_bytes > 0
                    assert_recovered_matches(torn, analyzer, version)
                    # Double crash during recovery: recovery is read-only, so
                    # recovering the same file again lands identically.
                    again = recover_service(cut_path)
                    assert again.state == torn.state

        check()


class TestJournalCli:
    def run_cli(self, argv, capsys):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_traffic_journal_crash_then_recover_verify(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        code, out = self.run_cli(
            ["traffic", "--requests", "50", "--edit-rate", "0.3",
             "--journal", path, "--crash-at", "4", "--seed", "3"],
            capsys,
        )
        assert code == 0
        assert "crashed mid-write" in out
        code, out = self.run_cli(["recover", path, "--verify"], capsys)
        assert code == 0
        assert "to version 4" in out
        assert "torn tail" in out
        assert "bit-identical" in out

    def test_recover_json_reports_verify_block(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        assert self.run_cli(
            ["traffic", "--requests", "40", "--edit-rate", "0.3",
             "--journal", path, "--seed", "5"],
            capsys,
        )[0] == 0
        code, out = self.run_cli(["recover", path, "--verify", "--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["verify"] == {"ok": True, "mismatches": []}
        assert payload["truncated_tail_bytes"] == 0
        assert payload["deltas_folded"] >= 0

    def test_recover_refuses_corruption_with_exit_2(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        assert self.run_cli(
            ["traffic", "--requests", "40", "--edit-rate", "0.3",
             "--journal", path, "--seed", "5"],
            capsys,
        )[0] == 0
        record = scan_journal(path).records[1]
        flip_bit(path, record.offset + record.length // 2)
        code, out = self.run_cli(["recover", path, "--verify"], capsys)
        assert code == 2
        assert "corrupted journal record" in out

    def test_crash_at_requires_journal(self, capsys):
        code, out = self.run_cli(
            ["traffic", "--requests", "10", "--crash-at", "2"], capsys
        )
        assert code == 2
        assert "--crash-at requires --journal" in out

    def test_traffic_json_includes_journal_and_warming(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        code, out = self.run_cli(
            ["traffic", "--requests", "40", "--edit-rate", "0.3", "--journal",
             path, "--fsync", "per_record", "--cache-warm", "--json",
             "--seed", "5"],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["journal"]["fsync"] == "per_record"
        assert payload["journal"]["fsyncs"] == payload["journal"]["records"]
        assert payload["metrics"]["journal"] == payload["journal"]
        assert "warming" in payload["metrics"]
