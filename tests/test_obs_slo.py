"""SLO burn rates, latency attribution, tail sampling, bench history.

The PR 10 telemetry-consumption contract, mirroring ``src/repro/obs``
and ``src/repro/perf/history.py``:

* the burn-rate engine alerts only when *both* windows exceed their
  thresholds after warm-up, edge-counts transitions, and (with
  ``latency_target_s=None``) calibrates its threshold conformally from
  a frozen prefix — a seeded overload run trips at least one alert while
  a calm closed-loop run raises none;
* attribution is exact by construction: per-stage seconds sum back to
  each response's measured latency within the tiling tolerance, and the
  span-implied queue occupancy never exceeds the measured high-water
  mark (Little's law as a consistency check);
* the tail sampler keeps EVERY interesting trace (shed, deadline-missed,
  refused, SLO-violating) with probability 1, samples boring ones at a
  deterministic head rate, and its kept/dropped ledger balances exactly;
* the bench history file appends one direction-tagged entry per run and
  ``repro bench-history`` exits nonzero on a planted regression.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    DEFAULT_SLOS,
    SloEngine,
    SloSpec,
    Span,
    TailSampler,
    Tracer,
    attribute_trace,
    attribution_report,
    littles_law_check,
    render_dashboard,
    trace_breakdown,
    validate_exposition,
    verify_trace,
)
from repro.obs.tracing import group_spans
from repro.perf import clear_caches
from repro.perf.history import (
    append_history,
    flag_regressions,
    history_entry,
    load_history,
    tracked_metrics,
)
from repro.service import (
    OVERLOAD_POLICY,
    CatalogService,
    ServiceError,
    run_traffic,
)
from repro.service.replay import request_from_event
from repro.service.requests import ServiceResponse
from repro.workloads import (
    SchemaSpec,
    overload_mix,
    random_schema,
    traffic_mix,
    view_catalog,
)


def _fixture(seed=43):
    schema = random_schema(
        SchemaSpec(relations=4, arity=2, universe_size=5), seed=seed
    )
    catalog = view_catalog(
        schema, classes=3, copies_per_class=2, members=2, atoms_per_query=2,
        seed=seed,
    )
    return schema, catalog


def _sampled_overload_lane(seed=43, requests=240, head_rate=0.1):
    schema, catalog = _fixture()
    clear_caches()
    events = overload_mix(schema, catalog, requests=requests, seed=seed)
    return run_traffic(
        catalog, events, jobs=2, scheduler="edf", policy=OVERLOAD_POLICY,
        admission="conformal", tracer=Tracer(), slo=SloEngine(),
        sampler=TailSampler(head_rate),
    )


# ------------------------------------------------------------------ SloSpec
class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="")
        with pytest.raises(ValueError):
            SloSpec(name="x", latency_target_s=0.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", latency_quantile=1.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", availability_target=0.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", coverage=1.5)

    def test_matching_and_budgets(self):
        spec = SloSpec(
            name="reads", kinds=("membership",), latency_quantile=0.9,
            availability_target=0.95,
        )
        assert spec.matches("membership") and not spec.matches("add_view")
        assert SloSpec(name="all").matches("anything")
        assert spec.latency_budget == pytest.approx(0.1)
        assert spec.availability_budget == pytest.approx(0.05)


# ---------------------------------------------------------------- SloEngine
class TestSloEngine:
    def _engine(self, **kwargs):
        defaults = dict(
            specs=(SloSpec(
                name="requests", latency_target_s=0.1,
                latency_quantile=0.9, availability_target=0.9,
            ),),
            fast_window_s=1.0, slow_window_s=4.0, min_samples=4,
        )
        defaults.update(kwargs)
        return SloEngine(**defaults)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SloEngine(specs=())
        with pytest.raises(ValueError):
            SloEngine(specs=(SloSpec(name="a"), SloSpec(name="a")))
        with pytest.raises(ValueError):
            SloEngine(fast_window_s=10.0, slow_window_s=5.0)
        with pytest.raises(ValueError):
            SloEngine(fast_burn=0.0)
        with pytest.raises(ValueError):
            SloEngine(min_samples=0)

    def test_unknown_error_kind_refused(self):
        with pytest.raises(ValueError):
            self._engine().observe(0.0, "membership", 0.01, error="exploded")

    def test_clean_stream_stays_quiet(self):
        engine = self._engine()
        for i in range(32):
            violated = engine.observe(i * 0.05, "membership", 0.01)
            assert violated is False
        assert engine.alerts == 0 and not engine.alarming
        report = engine.report()
        latency = report["slos"][0]["latency"]
        assert latency["fast"]["burn"] == 0.0
        assert latency["violations"] == 0

    def test_burn_math_and_edge_counted_alert(self):
        # Budget 0.1; every request slow → error rate 1.0 → burn 10x in
        # both windows, past the 4x/2x thresholds once warm (4 samples).
        engine = self._engine()
        for i in range(8):
            engine.observe(i * 0.05, "membership", 0.5)
        report = engine.report()
        latency = report["slos"][0]["latency"]
        assert latency["fast"]["burn"] == pytest.approx(10.0)
        assert latency["slow"]["burn"] == pytest.approx(10.0)
        assert latency["alarming"] and latency["alarms"] == 1
        assert engine.alerts == 1
        event = report["events"][0]
        assert event["slo"] == "requests" and event["objective"] == "latency"
        assert event["burn_fast"] >= event["fast_burn_threshold"]
        # Recovery clears the alarm without re-counting; after a quiet gap
        # long enough for both windows to drain, a second burst
        # edge-counts a second alert.
        t = 8 * 0.05
        for i in range(100):
            engine.observe(t + i * 0.05, "membership", 0.01)
        assert not engine.alarming and engine.alerts == 1
        for i in range(8):
            engine.observe(200.0 + i * 0.05, "membership", 0.5)
        assert engine.alerts == 2

    def test_fast_window_alone_does_not_alert(self):
        # A short blip after a quiet gap: the fast window (1s) holds only
        # the blip and saturates, but the slow window (4s) still reaches
        # back into the long clean history and stays under its threshold.
        engine = self._engine()
        for i in range(200):
            engine.observe(i * 0.02, "membership", 0.01)
        for i in range(8):
            engine.observe(5.0 + i * 0.05, "membership", 0.5)
        report = engine.report()
        latency = report["slos"][0]["latency"]
        assert latency["fast"]["burn"] >= 4.0
        assert latency["slow"]["burn"] < 2.0
        assert not latency["alarming"] and engine.alerts == 0

    def test_availability_objective_counts_all_error_kinds(self):
        engine = self._engine()
        for i, error in enumerate(("miss", "shed", "refused", "") * 4):
            engine.observe(i * 0.05, "membership", 0.01, error=error)
        report = engine.report()["slos"][0]
        assert report["errors"] == {"miss": 4, "shed": 4, "refused": 4}
        avail = report["availability"]
        # 75% error rate over a 10% budget: burn 7.5x, both windows.
        assert avail["fast"]["burn"] == pytest.approx(7.5)
        assert avail["alarming"] and avail["alarms"] >= 1

    def test_windows_evict_by_time(self):
        engine = self._engine()
        for i in range(8):
            engine.observe(i * 0.05, "membership", 0.5)
        # 10 quiet seconds later both windows have emptied.
        report = engine.report(now=10.0)
        latency = report["slos"][0]["latency"]
        assert latency["fast"]["samples"] == 0
        assert latency["slow"]["samples"] == 0
        assert latency["fast"]["burn"] is None

    def test_conformal_calibrated_threshold(self):
        spec = SloSpec(
            name="requests", latency_target_s=None, coverage=0.9,
            latency_quantile=0.9,
        )
        engine = SloEngine(
            specs=(spec,), fast_window_s=1.0, slow_window_s=4.0,
            min_samples=4, calibration_window=40,
        )
        # Calibration prefix: 40 exchangeable latencies around 10ms.
        for i in range(40):
            engine.observe(i * 0.01, "membership", 0.010 + (i % 7) * 0.001)
        latency = engine.report()["slos"][0]["latency"]
        assert latency["calibrated"] is True
        assert latency["calibration_samples"] == 40
        threshold = latency["target_s"]
        assert threshold is not None and 0.010 <= threshold <= 0.020
        # In-distribution latencies don't violate; a tail outlier does —
        # and observe() surfaces it (the sampler's interest signal).
        assert engine.observe(0.41, "membership", 0.011) is False
        assert engine.observe(0.42, "membership", 10 * threshold) is True

    def test_uncalibrated_engine_flags_nothing(self):
        spec = SloSpec(name="requests", latency_target_s=None)
        engine = SloEngine(
            specs=(spec,), fast_window_s=1.0, slow_window_s=4.0,
            min_samples=4, calibration_window=1000,
        )
        for i in range(50):
            assert engine.observe(i * 0.01, "membership", 5.0) is False
        latency = engine.report()["slos"][0]["latency"]
        assert latency["target_s"] is None and latency["violations"] == 0

    def test_per_class_slos_track_independently(self):
        engine = SloEngine(
            specs=(
                SloSpec(name="reads", kinds=("membership",),
                        latency_target_s=0.1, latency_quantile=0.9),
                SloSpec(name="edits", kinds=("add_view",),
                        latency_target_s=0.1, latency_quantile=0.9),
            ),
            fast_window_s=1.0, slow_window_s=4.0, min_samples=4,
        )
        for i in range(8):
            engine.observe(i * 0.05, "membership", 0.5)   # reads burn
            engine.observe(i * 0.05, "add_view", 0.01)    # edits clean
        report = {s["name"]: s for s in engine.report()["slos"]}
        assert report["reads"]["latency"]["alarming"]
        assert not report["edits"]["latency"]["alarming"]
        assert report["reads"]["observed"] == 8


# ----------------------------------------------- overload alerts, calm quiet
class TestSloTrafficIntegration:
    def test_overload_alerts_and_calm_closed_loop_stays_quiet(self):
        schema, catalog = _fixture()
        # Overload: conformal admission refuses unmeetable bursts, so the
        # availability budget (1%) burns orders of magnitude too fast —
        # the stock DEFAULT_SLOS must alert.  Whether a given seed's burst
        # refuses enough inside the warm-up windows depends on real
        # service times, so retry seeds (the TestDriftMonitor pattern):
        # the property is that overload alerts, not that one seed does on
        # every machine.
        slo_report = lane = None
        for seed in (43, 44, 45, 46):
            clear_caches()
            events = overload_mix(schema, catalog, requests=600, seed=seed)
            slo = SloEngine()
            lane = run_traffic(
                catalog, events, jobs=2, scheduler="edf",
                policy=OVERLOAD_POLICY, admission="conformal", slo=slo,
            )
            slo_report = lane["metrics"].to_dict()["slo"]
            if slo_report["alerts"] >= 1:
                break
        assert slo_report["alerts"] >= 1, "no overload seed tripped an SLO alert"
        assert slo_report["events"], "alert left no event record"
        event = slo_report["events"][0]
        assert event["burn_fast"] >= event["fast_burn_threshold"]
        assert event["burn_slow"] >= event["slow_burn_threshold"]
        # The alert is visible in the exported registry too.
        reg = {f.name: f for f in lane["registry"].families()}
        alerts = reg["repro_slo_alerts_total"].series()
        assert sum(alerts.values()) >= 1

        # Calm: the same catalog driven closed-loop with loose deadlines —
        # no backlog, no misses, no refusals, millisecond latencies far
        # under the 250ms target.  Zero alerts.
        async def closed_loop(calm_events, slo):
            async with CatalogService(
                catalog, jobs=2, admission="conformal", slo=slo
            ) as service:
                for event in calm_events:
                    await service.submit(request_from_event(event))
                return service.metrics()

        calm_report = None
        for seed in (43, 44, 45):
            clear_caches()
            calm_events = traffic_mix(
                schema, catalog, requests=300, edit_rate=0.0, seed=seed,
                deadline_s=5.0,
            )
            metrics = asyncio.run(closed_loop(calm_events, SloEngine()))
            calm_report = metrics.to_dict()["slo"]
            if calm_report["alerts"] == 0:
                break
        assert calm_report["alerts"] == 0 and not calm_report["alarming"], (
            "no calm seed ran quiet"
        )
        assert calm_report["slos"][0]["observed"] >= 300


# -------------------------------------------------------------- attribution
class TestAttribution:
    def test_shares_sum_to_measured_latency(self):
        # The tiling property, end to end: per-stage seconds sum back to
        # each completed response's measured latency within the verifier's
        # own tolerance, and shares sum to 1.
        schema, catalog = _fixture()
        clear_caches()
        events = overload_mix(schema, catalog, requests=240, seed=43)
        lane = run_traffic(
            catalog, events, jobs=2, scheduler="edf", policy=OVERLOAD_POLICY,
            admission="conformal", tracer=Tracer(),
        )
        groups = group_spans(lane["trace"]["spans"])
        checked = 0
        for response in lane["responses"]:
            if response.trace_id is None or not response.ok:
                continue
            spans = [
                s for s in groups.get(response.trace_id, [])
                if s.stage != "coalesced"
            ]
            if not spans:
                continue
            trace = attribute_trace(spans)
            tolerance = max(0.002, 0.05 * response.latency_s)
            assert trace["total_s"] == pytest.approx(
                response.latency_s, abs=tolerance
            )
            if trace["total_s"] > 0:
                assert sum(trace["shares"].values()) == pytest.approx(1.0)
            checked += 1
        assert checked >= 50

    def test_report_structure_and_top_k(self):
        spans = [
            Span(1, "queue", 0.0, 0.1, {"kind": "membership"}),
            Span(1, "compute", 0.1, 0.5),
            Span(2, "queue", 0.0, 0.3, {"kind": "add_view"}),
            Span(2, "compute", 0.3, 0.4),
        ]
        report = attribution_report(spans, top_k=2)
        assert report["overall"]["traces"] == 2
        assert set(report["by_kind"]) == {"membership", "add_view"}
        assert report["top_slowest"][0] == {
            "trace_id": 1, "stage": "compute", "seconds": pytest.approx(0.4),
        }
        assert report["slowest_traces"][0]["trace_id"] == 1
        with pytest.raises(ValueError):
            attribution_report(spans, top_k=0)

    def test_kindless_spans_group_as_unknown(self):
        report = attribution_report([Span(7, "compute", 0.0, 0.2)])
        assert set(report["by_kind"]) == {"unknown"}

    def test_littles_law_consistency_on_traced_run(self):
        schema, catalog = _fixture()
        clear_caches()
        events = overload_mix(schema, catalog, requests=240, seed=43)
        lane = run_traffic(
            catalog, events, jobs=2, scheduler="edf", policy=OVERLOAD_POLICY,
            tracer=Tracer(),
        )
        check = littles_law_check(
            lane["trace"]["spans"],
            lane["metrics"].max_queue_depth,
            elapsed_s=lane["elapsed_s"],
        )
        assert check["consistent"], check
        assert check["queue_spans"] > 0
        assert check["implied_avg_depth"] == pytest.approx(
            check["arrival_rate_rps"] * check["mean_wait_s"]
        )
        assert check["peak_overlap"] <= check["max_queue_depth"]

    def test_littles_law_flags_impossible_depth(self):
        # Three fully-overlapping queue spans against a claimed max depth
        # of 1: the tiling and the counter cannot both be right.
        spans = [Span(i, "queue", 0.0, 1.0) for i in (1, 2, 3)]
        check = littles_law_check(spans, max_queue_depth=1)
        assert check["peak_overlap"] == 3 and not check["consistent"]
        assert littles_law_check([], max_queue_depth=0)["consistent"]
        with pytest.raises(ValueError):
            littles_law_check(spans, max_queue_depth=-1)


# ------------------------------------------------------------- tail sampler
class TestTailSampler:
    def test_head_rate_validation(self):
        with pytest.raises(ValueError):
            TailSampler(-0.1)
        with pytest.raises(ValueError):
            TailSampler(1.1)

    def test_interesting_always_kept(self):
        sampler = TailSampler(0.0)
        assert all(sampler.decide(True) for _ in range(100))
        assert sampler.kept_interesting == 100 and sampler.dropped == 0

    def test_head_rate_is_deterministic_credit(self):
        # head_rate 0.25 keeps exactly every 4th boring trace: no RNG.
        sampler = TailSampler(0.25)
        decisions = [sampler.decide(False) for _ in range(16)]
        assert decisions.count(True) == 4
        assert decisions == ([False, False, False, True] * 4)
        assert TailSampler(1.0).decide(False) is True
        assert TailSampler(0.0).decide(False) is False

    def test_ledger_balances_exactly(self):
        sampler = TailSampler(0.3)
        outcomes = [True, False, False, True, False, False, False, True]
        for interesting in outcomes * 5:
            sampler.decide(interesting)
        ledger = sampler.ledger()
        assert ledger["decisions"] == 40
        assert ledger["decisions"] == (
            ledger["kept_interesting"] + ledger["kept_head"] + ledger["dropped"]
        )
        assert ledger["kept"] == ledger["kept_interesting"] + ledger["kept_head"]
        assert ledger["keep_rate"] == pytest.approx(ledger["kept"] / 40)
        assert TailSampler(0.5).ledger()["keep_rate"] is None

    def test_sampler_without_tracer_refused(self):
        _, catalog = _fixture()
        with pytest.raises(ServiceError):
            CatalogService(catalog, sampler=TailSampler(0.1))


class TestSamplerRetention:
    def test_every_interesting_trace_survives_overload(self):
        # The tail-sampling contract under a seeded overload mix: every
        # shed, deadline-missed or refused response keeps its full trace;
        # only boring traces are sampled out; the ledger balances.
        lane = _sampled_overload_lane(seed=43, requests=240)
        kept = {span.trace_id for span in lane["trace"]["spans"]}
        interesting = [
            r for r in lane["responses"]
            if r.trace_id is not None
            and (r.shed or r.deadline_missed or r.status == "refused")
        ]
        assert interesting, "overload mix produced no interesting responses"
        missing = [r.trace_id for r in interesting if r.trace_id not in kept]
        assert not missing, f"sampler dropped interesting traces {missing}"
        ledger = lane["trace"]["sampler"]
        assert ledger["decisions"] == (
            ledger["kept_interesting"] + ledger["kept_head"] + ledger["dropped"]
        )
        assert ledger["dropped"] > 0, "nothing was sampled out — test is vacuous"
        verdict = lane["trace"]["verdict"]
        assert verdict["sampled_out"] > 0
        assert not verdict["mismatches"] and not verdict["structural_problems"]

    def test_sampled_verdict_modes(self):
        # A completed response with no spans: sampled_out under a sampler,
        # a chain mismatch without one — and an interesting (missed)
        # response with no spans is a mismatch either way.
        boring = ServiceResponse(
            kind="membership", status="ok", answer=True, latency_s=0.01,
            trace_id=1,
        )
        missed = ServiceResponse(
            kind="membership", status="ok", answer=True, latency_s=0.5,
            deadline_missed=True, trace_id=2,
        )
        sampled = verify_trace([boring], [], sampled=True)
        assert sampled["sampled_out"] == 1 and not sampled["mismatches"]
        unsampled = verify_trace([boring], [], sampled=False)
        assert unsampled["sampled_out"] == 0 and unsampled["mismatches"]
        lost_miss = verify_trace([missed], [], sampled=True)
        assert lost_miss["mismatches"]
        assert any(
            "sampled-out" in m["problem"] for m in lost_miss["mismatches"]
        )


# -------------------------------------------------------- breakdown by kind
class TestBreakdownByKind:
    def test_by_kind_groups_on_span_attrs(self):
        spans = [
            Span(1, "admission", 0.0, 0.1, {"verdict": "admit", "kind": "membership"}),
            Span(1, "compute", 0.1, 0.5),
            Span(2, "admission", 0.0, 0.2, {"verdict": "admit", "kind": "add_view"}),
            Span(2, "compute", 0.2, 0.3),
        ]
        flat = trace_breakdown(spans)
        by_kind = trace_breakdown(spans, by_kind=True)
        assert set(by_kind) == {"membership", "add_view"}
        assert by_kind["membership"]["compute"]["count"] == 1
        assert by_kind["membership"]["compute"]["total_s"] == pytest.approx(0.4)
        # Per-kind counts partition the flat breakdown.
        assert sum(
            block["compute"]["count"] for block in by_kind.values()
        ) == flat["compute"]["count"]

    def test_kindless_traces_fall_back_to_unknown(self):
        spans = [Span(5, "compute", 0.0, 0.1)]
        assert set(trace_breakdown(spans, by_kind=True)) == {"unknown"}


# ----------------------------------------------------------- registry + dash
class TestSloSamplerMetricsExport:
    def test_registry_families_and_exposition(self):
        lane = _sampled_overload_lane(seed=43, requests=240)
        registry = lane["registry"]
        names = {f.name for f in registry.families()}
        assert {
            "repro_trace_sampler_kept_total",
            "repro_trace_sampler_dropped_total",
            "repro_trace_sampler_head_rate",
            "repro_slo_burn_rate",
            "repro_slo_alarming",
            "repro_slo_alerts_total",
        } <= names
        reg = {f.name: f for f in registry.families()}
        kept = reg["repro_trace_sampler_kept_total"].series()
        ledger = lane["trace"]["sampler"]
        assert sum(kept.values()) == ledger["kept"]
        dropped = reg["repro_trace_sampler_dropped_total"].series()
        assert sum(dropped.values()) == ledger["dropped"]
        assert validate_exposition(registry.render_prometheus()) == []

    def test_dashboard_renders_all_sections(self):
        lane = _sampled_overload_lane(seed=43, requests=240)
        report = attribution_report(lane["trace"]["spans"])
        frame = render_dashboard(
            lane["metrics"].to_dict(), attribution=report
        )
        for section in (
            "repro top", "SLO burn rates", "latency attribution",
            "tail sampler", "served", "burn fast/slow",
        ):
            assert section in frame
        # Renders from a bare snapshot too (no slo/sampler sections).
        bare = render_dashboard({"served": 1})
        assert "SLO burn rates" not in bare and "tail sampler" not in bare


# ------------------------------------------------------------- bench history
def _report(tput, overhead, schema_version=8, cpus=4):
    return {
        "schema_version": schema_version,
        "created_unix": 1000,
        "python": "3.11",
        "cpus": cpus,
        "config": {"smoke": True},
        "summary": {
            "engine": {"median_speedup_cold": 2.0, "median_speedup_warm": 3.0},
            "service": {
                "service": {"lane": {"throughput_rps": tput}},
                "tracing": {"trace_overhead_ratio": overhead},
                "sampling": {"sampler_overhead_ratio": overhead},
            },
        },
    }


class TestBenchHistory:
    def test_tracked_metrics_carry_direction(self):
        metrics = tracked_metrics(_report(1000.0, 1.01))
        assert metrics["engine.median_speedup_cold"]["higher_is_better"]
        assert metrics["service.lane.throughput_rps"]["value"] == 1000.0
        assert not metrics["service.trace_overhead_ratio"]["higher_is_better"]
        assert not metrics["service.sampler_overhead_ratio"]["higher_is_better"]

    def test_two_runs_append_two_entries(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_report(1000.0, 1.01), path, git_rev="aaa")
        append_history(_report(990.0, 1.02), path, git_rev="bbb")
        entries = load_history(path)
        assert len(entries) == 2
        assert [e["git_rev"] for e in entries] == ["aaa", "bbb"]
        assert entries[0]["schema_version"] == 8 and entries[0]["smoke"] is True
        verdict = flag_regressions(entries)
        assert verdict["comparable"] and not verdict["regressions"]

    def test_planted_regression_is_flagged_both_directions(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_report(1000.0, 1.01), path)
        append_history(_report(400.0, 1.5), path)  # throughput ÷2.5, overhead +49%
        verdict = flag_regressions(load_history(path), band=0.2)
        flagged = {change["metric"] for change in verdict["regressions"]}
        assert "service.lane.throughput_rps" in flagged
        assert "service.sampler_overhead_ratio" in flagged
        assert "service.trace_overhead_ratio" in flagged

    def test_incomparable_runs_are_not_compared(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_report(1000.0, 1.01, cpus=4), path)
        append_history(_report(400.0, 1.5, cpus=16), path)
        verdict = flag_regressions(load_history(path))
        assert not verdict["comparable"] and not verdict["regressions"]

    def test_band_validation_and_corrupt_file(self, tmp_path):
        with pytest.raises(ValueError):
            flag_regressions([], band=1.0)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            load_history(str(bad))
        assert load_history(str(tmp_path / "missing.jsonl")) == []

    def test_history_entry_stamps_come_from_report(self):
        entry = history_entry(_report(1000.0, 1.01), git_rev="abc")
        assert entry["created_unix"] == 1000 and entry["git_rev"] == "abc"


# -------------------------------------------------------------------- CLI
def run_cli(args):
    out = io.StringIO()
    status = cli_main(args, out=out)
    return status, out.getvalue()


class TestCli:
    def test_traffic_slo_flag_reports_and_samples(self, tmp_path):
        dump = str(tmp_path / "spans.jsonl")
        status, text = run_cli(
            ["traffic", "--overload", "--requests", "240", "--admission",
             "conformal", "--slo", "--trace", dump, "--json"]
        )
        assert status == 0
        summary = json.loads(text)
        slo = summary["metrics"]["slo"]
        assert slo["slos"][0]["observed"] > 0
        ledger = summary["trace"]["sampler"]
        assert ledger["decisions"] == (
            ledger["kept_interesting"] + ledger["kept_head"] + ledger["dropped"]
        )
        assert summary["trace"]["sampled_out"] >= 0
        assert summary["trace"]["mismatches"] == []

    def test_traffic_head_rate_validation(self):
        status, text = run_cli(
            ["traffic", "--requests", "10", "--slo", "--head-rate", "1.5"]
        )
        assert status == 2 and "--head-rate" in text

    def test_trace_by_kind(self, tmp_path):
        dump = str(tmp_path / "spans.jsonl")
        status, _ = run_cli(
            ["traffic", "--overload", "--requests", "120", "--trace", dump,
             "--json"]
        )
        assert status == 0
        status, text = run_cli(["trace", dump, "--by-kind", "--json"])
        assert status == 0
        payload = json.loads(text)
        assert payload["by_kind"], "by-kind breakdown is empty"
        status, text = run_cli(["trace", dump, "--by-kind"])
        assert status == 0 and "  kind " in text

    def test_top_once_renders_and_top_json_parses(self):
        status, text = run_cli(["top", "--once", "--requests", "120"])
        assert status == 0
        assert "repro top" in text and "SLO burn rates" in text
        assert "tail sampler" in text
        status, text = run_cli(
            ["top", "--once", "--requests", "120", "--json"]
        )
        assert status == 0
        payload = json.loads(text)
        assert payload["metrics"]["slo"] is not None
        assert payload["attribution"]["overall"]["traces"] > 0

    def test_top_from_metrics_dump(self, tmp_path):
        dump = str(tmp_path / "summary.json")
        status, text = run_cli(
            ["traffic", "--overload", "--requests", "120", "--slo", "--json"]
        )
        assert status == 0
        with open(dump, "w") as handle:
            handle.write(text)
        status, text = run_cli(["top", "--metrics", dump])
        assert status == 0 and "SLO burn rates" in text
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as handle:
            handle.write("{}")
        status, text = run_cli(["top", "--metrics", bad])
        assert status == 2 and "served" in text

    def test_bench_history_flags_planted_regression(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_report(1000.0, 1.01), path, git_rev="aaa")
        append_history(_report(990.0, 1.02), path, git_rev="bbb")
        status, text = run_cli(["bench-history", "--path", path])
        assert status == 0 and "no regressions" in text
        append_history(_report(400.0, 1.5), path, git_rev="ccc")
        status, text = run_cli(["bench-history", "--path", path])
        assert status == 1 and "REGRESSION" in text
        status, text = run_cli(["bench-history", "--path", path, "--json"])
        assert status == 1
        assert json.loads(text)["regressions"]

    def test_bench_history_band_validation_and_missing_file(self, tmp_path):
        status, text = run_cli(["bench-history", "--band", "2.0"])
        assert status == 2 and "--band" in text
        status, text = run_cli(
            ["bench-history", "--path", str(tmp_path / "none.jsonl")]
        )
        assert status == 0 and "no entries" in text
