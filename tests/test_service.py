"""The catalog service: deadlines, edits, coalescing, bit-identity.

The contract under test, mirroring the service docs:

* every ``status="ok"`` answer is bit-identical to a direct serial
  :class:`repro.engine.CatalogAnalyzer` run on the same catalog version;
* deadline pressure produces *explicit* refusals or ``partial``/unknown
  answers — never a wrong verdict;
* the serialized edit stream applies incrementally and its decision-reuse
  rate is observable (and positive for signature-class copies);
* duplicate in-flight questions coalesce, the bounded admission queue
  refuses when full, and the metrics snapshot's derived ratios survive
  their empty-denominator edge cases.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import CatalogAnalyzer
from repro.relalg import parse_expression
from repro.relational import DatabaseSchema, RelationName
from repro.service import (
    CatalogService,
    DeadlinePolicy,
    ServiceError,
    ServiceMetrics,
    ServiceRequest,
    percentile,
    replay,
    verify_replay,
)
from repro.service.deadline import TIER_BASE, TIER_REDUCED, TIER_REFUSE
from repro.views import SearchLimits, View
from repro.workloads import (
    SchemaSpec,
    random_schema,
    traffic_mix,
    view_catalog,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def small_catalog(q_schema):
    split = View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("V1", "ABC"),
            )
        ],
        q_schema,
    )
    weak = View(
        [(parse_expression("pi{A}(q)", q_schema), RelationName("Y1", "A"))], q_schema
    )
    return {"Split": split, "Joined": joined, "Weak": weak}


#: A policy whose reduced tier is entered by any finite deadline below 1000s
#: and whose floor is effectively zero — deterministic tier selection without
#: wall-clock races.
ALWAYS_REDUCED = DeadlinePolicy(
    full_deadline_s=1000.0, floor_s=1e-12, min_candidates=2, min_subsets=2
)


class TestExactAnswers:
    def test_every_kind_matches_direct_analyzer(self, small_catalog, q_schema):
        async def main():
            async with CatalogService(small_catalog) as service:
                return (
                    await service.membership(
                        "Split", parse_expression("pi{A}(q)", q_schema)
                    ),
                    await service.membership("Split", parse_expression("q", q_schema)),
                    await service.dominance("Joined", "Weak"),
                    await service.dominance("Weak", "Joined"),
                    await service.equivalence("Split", "Joined"),
                    await service.view_report("Split"),
                    await service.nonredundant_core(),
                )

        pos, neg, dom, rev, equiv, report, core = run(main())
        direct = CatalogAnalyzer(small_catalog)
        matrix = direct.dominance_matrix()
        assert pos.ok and pos.answer is True
        assert neg.ok and neg.answer is False
        assert dom.ok and dom.answer == matrix[("Joined", "Weak")]
        assert rev.ok and rev.answer == matrix[("Weak", "Joined")]
        assert equiv.ok and equiv.answer is True
        assert report.ok
        assert report.answer == direct.analyzer("Split").analyze().to_dict()
        assert core.ok and core.answer == direct.nonredundant_core()
        for response in (pos, neg, dom, rev, equiv, report, core):
            assert response.version == 0
            assert response.tier == "base"

    def test_unknown_view_is_explicit_refusal(self, small_catalog, q_schema):
        async def main():
            async with CatalogService(small_catalog) as service:
                return await service.membership(
                    "Nope", parse_expression("pi{A}(q)", q_schema)
                )

        response = run(main())
        assert response.status == "refused"
        assert "Nope" in response.reason
        assert response.answer is None


class TestDeadlines:
    def test_expired_deadline_is_refused_not_wrong(self, small_catalog, q_schema):
        # The goal is NOT in Cap(Split); an expired deadline must refuse,
        # never return that (or any) verdict.
        async def main():
            async with CatalogService(small_catalog) as service:
                return await service.membership(
                    "Split", parse_expression("q", q_schema), deadline_s=1e-9
                )

        response = run(main())
        assert response.status == "refused"
        assert response.answer is None
        assert response.deadline_missed

    def test_reduced_tier_negative_is_partial_unknown(self, small_catalog, q_schema):
        # Under starved budgets a failed search proves nothing: the answer
        # must be an explicit unknown, not a silently wrong "False".
        async def main():
            async with CatalogService(small_catalog, policy=ALWAYS_REDUCED) as service:
                return await service.membership(
                    "Split", parse_expression("q", q_schema), deadline_s=500.0
                )

        response = run(main())
        assert response.status == "partial"
        assert response.tier == TIER_REDUCED
        assert response.answer is None
        assert "unknown" in response.reason

    def test_reduced_tier_positive_is_sound(self, small_catalog, q_schema):
        # A construction found under reduced budgets is a real witness.
        async def main():
            async with CatalogService(small_catalog, policy=ALWAYS_REDUCED) as service:
                return await service.membership(
                    "Split", parse_expression("pi{A}(q)", q_schema), deadline_s=500.0
                )

        response = run(main())
        assert response.ok
        assert response.answer is True
        assert response.tier == TIER_REDUCED

    def test_reduced_tier_cold_matrix_question_refused(self, small_catalog):
        async def main():
            async with CatalogService(small_catalog, policy=ALWAYS_REDUCED) as service:
                return await service.dominance("Split", "Weak", deadline_s=500.0)

        response = run(main())
        assert response.status == "refused"
        assert response.answer is None

    def test_reduced_tier_warm_matrix_question_served_exactly(self, small_catalog):
        async def main():
            async with CatalogService(small_catalog, policy=ALWAYS_REDUCED) as service:
                warmup = await service.dominance("Split", "Weak")  # no deadline: base
                tight = await service.dominance("Split", "Weak", deadline_s=500.0)
                return warmup, tight

        warmup, tight = run(main())
        assert warmup.ok
        assert tight.ok
        assert tight.answer == warmup.answer
        expected = CatalogAnalyzer(small_catalog).dominance_matrix()[("Split", "Weak")]
        assert tight.answer == expected

    def test_policy_tier_mapping(self):
        base = SearchLimits()
        policy = DeadlinePolicy(full_deadline_s=1.0, floor_s=0.01)
        assert policy.limits_for(None, base) == (TIER_BASE, base)
        assert policy.limits_for(5.0, base) == (TIER_BASE, base)
        tier, reduced = policy.limits_for(0.5, base)
        assert tier == TIER_REDUCED
        assert reduced.max_subsets < base.max_subsets
        assert reduced.max_candidates < base.max_candidates
        assert reduced.max_rows == base.max_rows
        assert policy.limits_for(0.001, base) == (TIER_REFUSE, None)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(full_deadline_s=0.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(full_deadline_s=0.1, floor_s=0.2)

    def test_reduced_tier_never_exceeds_starved_base_budgets(self):
        # The tier floors must clamp to the base limits: raising a
        # deliberately starved budget could find witnesses the exact tier
        # would not, contradicting the bit-identity contract.
        starved = SearchLimits(max_candidates=2, max_subsets=3)
        policy = DeadlinePolicy(
            full_deadline_s=1.0, floor_s=0.01, min_candidates=4, min_subsets=8
        )
        tier, limits = policy.limits_for(0.5, starved)
        assert tier == TIER_BASE  # clamped reduction collapses onto base
        assert limits == starved
        generous = SearchLimits()
        tier, limits = policy.limits_for(0.5, generous)
        assert tier == TIER_REDUCED
        assert limits.max_candidates <= generous.max_candidates
        assert limits.max_subsets <= generous.max_subsets


class TestEditStream:
    def test_edits_apply_incrementally_and_reuse(self, small_catalog, q_schema):
        # "Zcopy" sorts after "Split", so "Split" stays the signature-class
        # representative and every prior decision is inherited verbatim.
        copy = small_catalog["Split"].renamed({"W1": "X1", "W2": "X2"})

        async def main():
            async with CatalogService(small_catalog, track_history=True) as service:
                await service.nonredundant_core()  # warm the matrix at v0
                added = await service.add_view("Zcopy", copy)
                core = await service.nonredundant_core()
                dropped = await service.drop_view("Zcopy")
                core_after = await service.nonredundant_core()
                return added, core, dropped, core_after, service.metrics()

        added, core, dropped, core_after, metrics = run(main())
        assert added.ok and added.answer["version"] == 1
        # A renamed copy lands in an existing signature class: every
        # representative decision is inherited.
        assert added.answer["decisions_reused"] == added.answer["decisions_needed"]
        fresh_with = CatalogAnalyzer({**small_catalog, "Zcopy": copy})
        assert core.ok and core.answer == fresh_with.nonredundant_core()
        assert core.version == 1
        assert dropped.ok and dropped.answer["version"] == 2
        assert core_after.ok
        assert core_after.answer == CatalogAnalyzer(small_catalog).nonredundant_core()
        assert metrics.edits == 2
        assert metrics.reuse_rate > 0

    def test_edit_with_mismatched_schema_is_refused(self, small_catalog):
        other = DatabaseSchema([RelationName("r", "AB")])
        stray = View(
            [(parse_expression("r", other), RelationName("S1", "AB"))], other
        )

        async def main():
            async with CatalogService(small_catalog) as service:
                bad = await service.add_view("Stray", stray)
                core = await service.nonredundant_core()
                return bad, core, service.version

        bad, core, version = run(main())
        assert bad.status == "refused"
        assert version == 0  # the failed edit did not bump the version
        assert core.ok

    def test_history_tracks_every_version(self, small_catalog, q_schema):
        extra = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )

        async def main():
            async with CatalogService(small_catalog, track_history=True) as service:
                await service.add_view("Extra", extra)
                await service.drop_view("Extra")
                return service.catalog_history()

        history = run(main())
        assert set(history) == {0, 1, 2}
        assert "Extra" in history[1] and "Extra" not in history[2]
        assert history[0].keys() == history[2].keys()

    def test_history_requires_opt_in(self, small_catalog):
        async def main():
            async with CatalogService(small_catalog) as service:
                service.catalog_history()

        with pytest.raises(ServiceError):
            run(main())


class TestQueueBehaviour:
    def test_duplicate_inflight_questions_coalesce(self, small_catalog, q_schema):
        query = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)

        async def main():
            async with CatalogService(small_catalog) as service:
                tasks = [
                    asyncio.get_running_loop().create_task(
                        service.membership("Split", query)
                    )
                    for _ in range(5)
                ]
                responses = await asyncio.gather(*tasks)
                return responses, service.metrics()

        responses, metrics = run(main())
        assert len({r.answer for r in responses}) == 1
        assert all(r.ok for r in responses)
        assert metrics.coalesced >= 1
        assert metrics.served + metrics.coalesced >= 5

    def test_full_admission_queue_refuses(self, small_catalog, q_schema):
        async def main():
            async with CatalogService(small_catalog, queue_limit=2) as service:
                tasks = [
                    asyncio.get_running_loop().create_task(
                        service.membership(
                            "Split", parse_expression(f"pi{{{attrs}}}(q)", q_schema)
                        )
                    )
                    for attrs in ("A", "B", "C", "A,B", "B,C", "A,C", "A,B,C")
                ]
                responses = await asyncio.gather(*tasks)
                return responses, service.metrics()

        responses, metrics = run(main())
        refused = [r for r in responses if r.status == "refused"]
        assert refused and all("queue full" in r.reason for r in refused)
        assert metrics.refused == len(refused)
        # Everything admitted was answered exactly.
        assert all(r.ok for r in responses if r.status != "refused")

    def test_different_deadlines_do_not_coalesce(self, small_catalog, q_schema):
        # An unbounded duplicate must not inherit a tiny-deadline twin's
        # refusal (nor a deadlined one silently escape enforcement).
        query = parse_expression("pi{A}(q)", q_schema)

        async def main():
            async with CatalogService(small_catalog, jobs=2) as service:
                loop = asyncio.get_running_loop()
                tiny = loop.create_task(
                    service.membership("Split", query, deadline_s=1e-9)
                )
                unbounded = loop.create_task(service.membership("Split", query))
                return await asyncio.gather(tiny, unbounded)

        tiny, unbounded = run(main())
        assert tiny.status == "refused"
        assert unbounded.ok and unbounded.answer is True

    def test_close_rejects_racing_submissions(self, small_catalog, q_schema):
        # A submit that lands after close() begins must raise, not hang on a
        # future no dispatcher will ever resolve.
        async def main():
            service = CatalogService(small_catalog)
            await service.start()
            await service.close()
            await asyncio.wait_for(
                service.membership("Split", parse_expression("pi{A}(q)", q_schema)),
                timeout=5,
            )

        with pytest.raises(ServiceError):
            run(main())

    def test_priorities_order_the_queue(self, small_catalog, q_schema):
        # Not a strict ordering assertion (reads run concurrently), just the
        # plumbing: mixed-priority submissions all complete correctly.
        async def main():
            async with CatalogService(small_catalog, jobs=2) as service:
                tasks = [
                    asyncio.get_running_loop().create_task(
                        service.membership(
                            "Split",
                            parse_expression(f"pi{{{attrs}}}(q)", q_schema),
                            priority=priority,
                        )
                    )
                    for attrs, priority in (("A", 20), ("B", 1), ("C", 10))
                ]
                return await asyncio.gather(*tasks)

        responses = run(main())
        assert all(r.ok and r.answer is True for r in responses)


class TestInternalErrorResilience:
    def test_unexpected_read_error_resolves_as_refusal(
        self, small_catalog, q_schema, monkeypatch
    ):
        # A non-ReproError escaping a read handler must refuse the caller,
        # not hang the future or kill the dispatcher.
        async def main():
            async with CatalogService(small_catalog) as service:
                monkeypatch.setattr(
                    CatalogService,
                    "_answer",
                    lambda self, *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
                )
                broken = await asyncio.wait_for(
                    service.membership(
                        "Split", parse_expression("pi{A}(q)", q_schema)
                    ),
                    timeout=5,
                )
                monkeypatch.undo()
                healthy = await asyncio.wait_for(
                    service.nonredundant_core(), timeout=5
                )
                return broken, healthy

        broken, healthy = run(main())
        assert broken.status == "refused"
        assert "RuntimeError" in broken.reason
        assert healthy.ok  # the dispatcher survived

    def test_unexpected_edit_error_resolves_and_keeps_state(
        self, small_catalog, q_schema, monkeypatch
    ):
        async def main():
            async with CatalogService(small_catalog) as service:
                monkeypatch.setattr(
                    CatalogAnalyzer,
                    "with_view",
                    lambda self, *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
                )
                extra = View(
                    [
                        (
                            parse_expression("pi{B}(q)", q_schema),
                            RelationName("Z1", "B"),
                        )
                    ],
                    q_schema,
                )
                broken = await asyncio.wait_for(
                    service.add_view("Extra", extra), timeout=5
                )
                monkeypatch.undo()
                healthy = await asyncio.wait_for(
                    service.nonredundant_core(), timeout=5
                )
                return broken, healthy, service.version

        broken, healthy, version = run(main())
        assert broken.status == "refused"
        assert "RuntimeError" in broken.reason
        assert version == 0  # no version bump on the failed edit
        assert healthy.ok


class TestLifecycle:
    def test_submit_before_start_raises(self, small_catalog, q_schema):
        service = CatalogService(small_catalog)

        async def main():
            await service.membership("Split", parse_expression("pi{A}(q)", q_schema))

        with pytest.raises(ServiceError):
            run(main())

    def test_validation(self, small_catalog):
        with pytest.raises(ServiceError):
            CatalogService(small_catalog, jobs=0)
        with pytest.raises(ServiceError):
            CatalogService(small_catalog, queue_limit=0)

    def test_request_validation(self, q_schema):
        with pytest.raises(ServiceError):
            ServiceRequest(kind="fortune")
        with pytest.raises(ServiceError):
            ServiceRequest(kind="membership", subject="V")  # no query
        with pytest.raises(ServiceError):
            ServiceRequest(kind="dominance", subject="V")  # no other
        with pytest.raises(ServiceError):
            ServiceRequest(kind="add_view", subject="V")  # no view payload
        with pytest.raises(ServiceError):
            ServiceRequest(
                kind="membership",
                subject="V",
                query=parse_expression("q", q_schema),
                deadline_s=-1.0,
            )
        # A priority beyond the bound could sort behind the shutdown
        # sentinel and strand its future unresolved; it must be rejected.
        with pytest.raises(ServiceError):
            ServiceRequest(kind="nonredundant_core", priority=(1 << 62) + 1)
        with pytest.raises(ServiceError):
            ServiceRequest(kind="nonredundant_core", priority=-1)

    def test_coalesce_key_separates_deadline_and_priority(self, q_schema):
        query = parse_expression("q", q_schema)
        base = ServiceRequest(kind="membership", subject="V", query=query)
        same = ServiceRequest(kind="membership", subject="V", query=query)
        deadlined = ServiceRequest(
            kind="membership", subject="V", query=query, deadline_s=0.1
        )
        urgent = ServiceRequest(
            kind="membership", subject="V", query=query, priority=1
        )
        assert base.coalesce_key(0) == same.coalesce_key(0)
        assert base.coalesce_key(0) != base.coalesce_key(1)  # version-scoped
        assert base.coalesce_key(0) != deadlined.coalesce_key(0)
        assert base.coalesce_key(0) != urgent.coalesce_key(0)
        assert ServiceRequest(kind="drop_view", subject="V").coalesce_key(0) is None


class TestTrafficReplayIdentity:
    def test_replayed_traffic_bit_identical_per_version(self):
        schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=23)
        catalog = view_catalog(
            schema, classes=3, copies_per_class=2, members=2, atoms_per_query=2, seed=9
        )
        events = traffic_mix(
            schema, catalog, requests=40, edit_rate=0.2, seed=7, deadline_s=30.0
        )

        async def main():
            async with CatalogService(
                catalog, jobs=2, queue_limit=len(events) + 8, track_history=True
            ) as service:
                responses = await replay(service, events)
                return responses, service.metrics(), service.catalog_history()

        responses, metrics, history = run(main())
        verdict = verify_replay(history, events, responses)
        assert verdict["mismatches"] == []
        assert verdict["checked"] > 0
        assert metrics.edits > 0
        assert metrics.reuse_rate > 0  # the edit stream reused prior decisions
        assert len(responses) == len(events)

    def test_verify_replay_oracle_is_cache_independent(self):
        # The default oracle clears the process-global memo tables first, so
        # it recomputes every answer instead of replaying the service run's
        # own cached results.
        from repro.perf import cache_stats
        from repro.service import run_traffic

        schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=23)
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2, atoms_per_query=2, seed=9
        )
        events = traffic_mix(schema, catalog, requests=15, edit_rate=0.0, seed=3)
        lane = run_traffic(catalog, events)  # verify runs with cleared tables
        assert lane["verdict"]["mismatches"] == []
        # The verification pass itself repopulated the tables from scratch:
        # its misses are visible, proving it did not just replay hits.
        # (With REPRO_PERF_CACHE=0 the tables are never consulted at all,
        # which is independence by construction.)
        from repro.perf import caches_enabled

        if caches_enabled():
            stats = cache_stats()["closure.find_construction"]
            assert stats.misses > 0

    def test_run_traffic_helper_is_verified(self):
        # The shared CLI/benchmark lane: one call builds, replays, verifies.
        from repro.service import run_traffic

        schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=23)
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2, atoms_per_query=2, seed=9
        )
        events = traffic_mix(schema, catalog, requests=20, edit_rate=0.2, seed=3)
        lane = run_traffic(catalog, events, jobs=2)
        assert lane["verdict"]["mismatches"] == []
        assert lane["verdict"]["checked"] > 0
        assert lane["elapsed_s"] > 0
        assert len(lane["responses"]) == len(events)
        assert lane["metrics"].served > 0
        assert 0 in lane["history"]


class TestMetricsGuards:
    def test_fresh_snapshot_has_all_zero_ratios(self):
        metrics = ServiceMetrics()
        assert metrics.deadline_miss_rate == 0.0
        assert metrics.shed_rate == 0.0
        assert metrics.reuse_rate == 0.0
        assert metrics.throughput_rps == 0.0
        assert metrics.latency_p50_s == 0.0
        assert metrics.queue_wait_p50_s == 0.0
        rendered = metrics.to_dict()
        assert rendered["deadline_miss_rate"] == 0.0
        assert rendered["shed_rate"] == 0.0
        assert rendered["reuse"]["rate"] == 0.0
        assert rendered["missed_in_queue"] == 0
        assert rendered["missed_computing"] == 0
        assert rendered["scheduler"] == "fifo"

    def test_ratios_with_real_denominators(self):
        metrics = ServiceMetrics(
            served=8,
            deadlined=4,
            deadline_misses=1,
            missed_in_queue=1,
            shed=1,
            uptime_s=2.0,
            reuse_reused=3,
            reuse_needed=6,
        )
        assert metrics.deadline_miss_rate == pytest.approx(0.25)
        assert metrics.shed_rate == pytest.approx(0.25)
        assert metrics.reuse_rate == pytest.approx(0.5)
        assert metrics.throughput_rps == pytest.approx(4.0)

    def test_percentile_guards(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.95) == 7.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 1.0) == 2.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_live_service_snapshot_includes_cache_tables(self, small_catalog):
        async def main():
            async with CatalogService(small_catalog) as service:
                await service.nonredundant_core()
                return service.metrics()

        metrics = run(main())
        assert metrics.served == 1
        assert metrics.uptime_s > 0
        assert metrics.scheduler == "edf"  # the service default
        assert "closure.find_construction" in metrics.cache
        rendered = metrics.to_dict()
        assert "hit_rate" in rendered["cache"]["closure.find_construction"]
        assert "contention" in rendered["cache"]["closure.find_construction"]
        assert "eviction_pressure" in rendered["cache"]["closure.find_construction"]
