"""The streaming subscription layer: deltas, folds, the hub, the service.

The contract under test, mirroring :mod:`repro.service.subscriptions` and
:mod:`repro.engine.delta`:

* a :class:`CatalogDelta` is *foldable*: applying it (and any coalesced run
  of them) to the previous version's state reconstructs the next version's
  core, equivalence classes and dominance matrix bit-identically — for
  random seeded edit sequences too (the Hypothesis property);
* the hub filters by topic, never blocks on and never silently drops for a
  slow subscriber — overflow supersedes pending deltas with one snapshot
  resync, and the delivery ledger always balances;
* reconnecting subscribers catch up with one coalesced delta while the
  retained log covers the gap and a snapshot resync past the
  ``history_window``;
* the service pushes one delta per committed edit (failed edits push
  nothing), versions are consecutive and the metrics snapshot surfaces the
  subscription counters.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import (
    CatalogAnalyzer,
    CatalogDelta,
    coalesce_deltas,
    classes_from_matrix,
    compute_delta,
    core_from_matrix,
    fold_classes,
    fold_core,
    fold_matrix,
)
from repro.relalg import parse_expression
from repro.relational import DatabaseSchema, RelationName
from repro.service import (
    EVENT_CLOSED,
    EVENT_DELTA,
    EVENT_RESYNC,
    CatalogService,
    ServiceError,
    SubscriptionHub,
    run_traffic,
    verify_subscriptions,
)
from repro.service.subscriptions import validate_topics
from repro.views import View
from repro.workloads import (
    SchemaSpec,
    random_schema,
    subscriber_mix,
    traffic_mix,
    view_catalog,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def small_catalog(q_schema):
    split = View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("V1", "ABC"),
            )
        ],
        q_schema,
    )
    weak = View(
        [(parse_expression("pi{A}(q)", q_schema), RelationName("Y1", "A"))], q_schema
    )
    return {"Split": split, "Joined": joined, "Weak": weak}


@pytest.fixture
def weak_view(q_schema):
    return View(
        [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))], q_schema
    )


def folded_equals_fresh(base, deltas, fresh):
    """Fold ``deltas`` over analyzer ``base``'s state, compare to ``fresh``."""

    snapshot = base.snapshot(0)
    core = set(snapshot.nonredundant_core)
    classes = set(snapshot.equivalence_classes)
    matrix = dict(snapshot.dominance)
    for delta in deltas:
        core = set(fold_core(core, delta))
        classes = set(fold_classes(classes, delta))
        matrix = fold_matrix(matrix, delta)
    return (
        tuple(sorted(core)) == fresh.nonredundant_core()
        and classes == set(fresh.equivalence_classes())
        and matrix == fresh.dominance_matrix()
    )


class TestEngineDelta:
    def test_diff_on_add_names_the_changed_set(self, small_catalog, weak_view):
        base = CatalogAnalyzer(small_catalog)
        derived = base.with_view("Zextra", weak_view)
        delta = derived.diff(base, version=1)
        assert delta.version == 1
        assert delta.views_added == ("Zextra",)
        assert delta.views_dropped == () and delta.views_replaced == ()
        # Every new matrix pair involves the added view.
        assert delta.edges_set
        assert all("Zextra" in pair for pair in delta.edges_set)
        assert delta.edges_removed == ()
        assert delta.decisions_needed > 0

    def test_diff_on_drop_removes_edges(self, small_catalog):
        base = CatalogAnalyzer(small_catalog)
        base.dominance_matrix()
        derived = base.without_view("Weak")
        delta = derived.diff(base, version=1)
        assert delta.views_dropped == ("Weak",)
        assert delta.edges_removed
        assert all("Weak" in pair for pair in delta.edges_removed)
        # Dominance among the surviving views did not change.
        assert delta.edges_set == {}

    def test_diff_on_replace_marks_replacement(self, small_catalog, weak_view):
        base = CatalogAnalyzer(small_catalog)
        derived = base.with_view("Weak", weak_view)
        delta = derived.diff(base, version=3)
        assert delta.views_replaced == ("Weak",)
        assert delta.views_added == () and delta.views_dropped == ()

    def test_fold_reconstructs_across_edit_chain(self, small_catalog, weak_view):
        v0 = CatalogAnalyzer(small_catalog)
        v1 = v0.with_view("Zcopy", small_catalog["Split"].renamed({"W1": "X1", "W2": "X2"}))
        v2 = v1.with_view("Weak", weak_view)
        v3 = v2.without_view("Zcopy")
        deltas = [
            v1.diff(v0, version=1),
            v2.diff(v1, version=2),
            v3.diff(v2, version=3),
        ]
        views3 = v3.views
        assert folded_equals_fresh(v0, deltas, CatalogAnalyzer(views3))
        # And the coalesced single step folds to the same final state.
        assert folded_equals_fresh(
            v0, [coalesce_deltas(deltas)], CatalogAnalyzer(views3)
        )

    def test_coalesce_nets_out_add_then_drop(self, small_catalog, weak_view):
        v0 = CatalogAnalyzer(small_catalog)
        v1 = v0.with_view("Zextra", weak_view)
        v2 = v1.without_view("Zextra")
        coalesced = coalesce_deltas(
            [v1.diff(v0, version=1), v2.diff(v1, version=2)]
        )
        assert coalesced.version == 2
        assert coalesced.views_added == ()
        assert coalesced.views_dropped == ()
        assert "Zextra" not in {n for pair in coalesced.edges_set for n in pair}
        with pytest.raises(ValueError):
            coalesce_deltas([])

    def test_topics_and_matching(self):
        delta = CatalogDelta(
            version=1,
            views_added=("New",),
            core_entered=("New",),
            edges_set={("New", "Old"): True},
        )
        topics = delta.topics()
        assert "core" in topics
        assert "dominance" in topics
        assert "view_report:New" in topics
        assert "equivalence_classes" not in topics
        assert delta.matches({"core"})
        assert delta.matches({"view_report:New", "equivalence_classes"})
        assert not delta.matches({"view_report:Old"})
        assert not delta.matches({"equivalence_classes"})

    def test_snapshot_matches_analyzer_state(self, small_catalog):
        analyzer = CatalogAnalyzer(small_catalog)
        snapshot = analyzer.snapshot(7)
        assert snapshot.version == 7
        assert snapshot.names == analyzer.names
        assert snapshot.nonredundant_core == analyzer.nonredundant_core()
        assert snapshot.equivalence_classes == analyzer.equivalence_classes()
        assert snapshot.dominance == analyzer.dominance_matrix()
        rendered = snapshot.to_dict()
        assert rendered["version"] == 7
        assert set(rendered["dominance"]) == set(snapshot.names)

    def test_pure_matrix_derivations_agree_with_analyzer(self, small_catalog):
        analyzer = CatalogAnalyzer(small_catalog)
        matrix = analyzer.dominance_matrix()
        names = sorted(small_catalog)
        assert classes_from_matrix(names, matrix) == analyzer.equivalence_classes()
        assert core_from_matrix(names, matrix) == analyzer.nonredundant_core()

    def test_delta_to_dict_is_json_able(self, small_catalog, weak_view):
        import json

        base = CatalogAnalyzer(small_catalog)
        delta = base.with_view("Zextra", weak_view).diff(base, version=1)
        rendered = delta.to_dict()
        json.dumps(rendered)
        assert rendered["version"] == 1
        assert rendered["views_added"] == ["Zextra"]


class TestTopicValidation:
    def test_catalog_topics_and_view_reports_accepted(self):
        topics = validate_topics(["core", "dominance", "view_report:Anything"])
        assert topics == frozenset(
            {"core", "dominance", "view_report:Anything"}
        )

    @pytest.mark.parametrize(
        "bad", [[], ["nope"], ["view_report:"], ["core", "Core"]]
    )
    def test_invalid_topic_sets_refused(self, bad):
        with pytest.raises(ServiceError):
            validate_topics(bad)


class TestHub:
    def _delta(self, version, **kwargs):
        kwargs.setdefault("core_entered", (f"V{version}",))
        return CatalogDelta(version=version, **kwargs)

    def _snapshot(self, version=0):
        from repro.engine import CatalogSnapshot

        return CatalogSnapshot(
            version=version,
            names=(),
            nonredundant_core=(),
            equivalence_classes=(),
            dominance={},
        )

    def test_topic_filtering(self):
        hub = SubscriptionHub()
        core_sub = hub.subscribe(["core"])
        report_sub = hub.subscribe(["view_report:X"])
        hub.publish(self._delta(1), self._snapshot)
        assert core_sub.pending == 1 and core_sub.delivered == 1
        assert report_sub.pending == 0 and report_sub.filtered == 1
        event = core_sub.get_nowait()
        assert event.type == EVENT_DELTA and event.version == 1

    def test_overflow_supersedes_into_one_resync(self):
        hub = SubscriptionHub()
        slow = hub.subscribe(["core"], buffer=2)
        for version in (1, 2, 3, 4):
            hub.publish(self._delta(version), lambda: self._snapshot(4))
        # Two deltas queued, then the third overflowed: both pending plus
        # the trigger superseded, one resync queued, the fourth queued after.
        events = slow.drain()
        types = [e.type for e in events]
        assert types == [EVENT_RESYNC, EVENT_DELTA]
        assert events[0].snapshot is not None
        assert slow.superseded == 3
        stats = slow.stats()
        assert (
            stats["delivered"]
            == stats["consumed"] + stats["pending"] + stats["superseded"]
        )
        assert stats["delivered"] + stats["filtered"] == stats["published_seen"]

    def test_catchup_within_log_is_one_coalesced_delta(self):
        hub = SubscriptionHub()
        for version in (1, 2, 3):
            hub.publish(self._delta(version), self._snapshot)
        late = hub.subscribe(["core"], from_version=1, current_version=3)
        event = late.get_nowait()
        assert event.type == EVENT_DELTA and event.catch_up
        assert event.version == 3
        assert set(event.delta.core_entered) == {"V2", "V3"}
        assert late.catchup_deltas == 2
        fresh = hub.subscribe(["core"], from_version=3, current_version=3)
        assert fresh.pending == 0

    def test_catchup_past_window_resyncs(self):
        hub = SubscriptionHub(window=2)
        for version in (1, 2, 3, 4, 5):
            hub.publish(self._delta(version), self._snapshot)
        assert sorted(hub.delta_log()) == [4, 5]
        late = hub.subscribe(
            ["core"],
            from_version=1,
            current_version=5,
            snapshot_fn=lambda: self._snapshot(5),
        )
        event = late.get_nowait()
        assert event.type == EVENT_RESYNC and event.version == 5
        assert "retention window" in event.reason
        # The catch-up resync is attributed to its cause, not to overflow.
        assert late.resyncs_catchup == 1 and late.resyncs_overflow == 0
        stats = hub.stats()
        assert stats["resyncs_catchup"] == 1
        assert stats["resyncs_overflow"] == 0 and stats["resyncs_forced"] == 0

    def test_resync_causes_partition_the_total(self):
        """One counter per cause — overflow / catch-up / forced — and the
        causes always sum to ``resyncs``, on the hub and per subscription."""

        hub = SubscriptionHub(window=2)
        for version in (1, 2, 3, 4, 5):
            hub.publish(self._delta(version), lambda: self._snapshot(5))
        late = hub.subscribe(
            ["core"],
            from_version=1,
            current_version=5,
            snapshot_fn=lambda: self._snapshot(5),
        )
        slow = hub.subscribe(["core"], buffer=1)
        for version in (6, 7):
            hub.publish(self._delta(version), lambda: self._snapshot(7))
        hub.force_resync(lambda: self._snapshot(7), reason="delta failed")
        stats = hub.stats()
        assert stats["resyncs_catchup"] == 1      # late joined past the window
        assert stats["resyncs_overflow"] == 1     # slow overflowed at buffer=1
        assert stats["resyncs_forced"] == 2       # both subscribers re-anchored
        assert stats["resyncs"] == (
            stats["resyncs_overflow"]
            + stats["resyncs_catchup"]
            + stats["resyncs_forced"]
        )
        for sub in (late, slow):
            sub_stats = sub.stats()
            assert sub_stats["resyncs"] == (
                sub_stats["resyncs_overflow"]
                + sub_stats["resyncs_catchup"]
                + sub_stats["resyncs_forced"]
            )
            # The ledger still balances with the split in place.
            assert (
                sub_stats["delivered"]
                == sub_stats["consumed"]
                + sub_stats["pending"]
                + sub_stats["superseded"]
            )

    def test_ledger_balances_with_events_still_queued(self):
        # The invariant must hold *before* any drain, and catch-up/resync
        # events — outside the published ledger — must not fake a drop.
        hub = SubscriptionHub()
        for version in (1, 2):
            hub.publish(self._delta(version), self._snapshot)
        late = hub.subscribe(["core"], from_version=0, current_version=2)
        live = hub.subscribe(["core"], buffer=1)
        hub.publish(self._delta(3), self._snapshot)   # queued for both
        hub.publish(self._delta(4), lambda: self._snapshot(4))  # live overflows
        for sub in (late, live):
            stats = sub.stats()
            assert (
                stats["delivered"]
                == stats["consumed"] + stats["pending"] + stats["superseded"]
            ), stats
            assert stats["delivered"] + stats["filtered"] == stats["published_seen"]
        # late has one catch-up + two live deltas queued; only the live
        # deltas are ledger-pending.
        assert late.pending == 3 and late.stats()["pending"] == 2
        # live superseded both (the pending delta and the trigger).
        assert live.stats()["superseded"] == 2

    def test_subscribe_validation(self):
        hub = SubscriptionHub()
        with pytest.raises(ServiceError):
            hub.subscribe(["core"], buffer=0)
        with pytest.raises(ServiceError):
            hub.subscribe(["core"], from_version=3, current_version=1)
        with pytest.raises(ServiceError):
            SubscriptionHub(window=0)

    def test_unsubscribe_and_close_deliver_terminal_event(self):
        hub = SubscriptionHub()
        first = hub.subscribe(["core"])
        second = hub.subscribe(["dominance"])
        hub.unsubscribe(first)
        assert first.get_nowait().type == EVENT_CLOSED
        assert hub.subscriber_count == 1
        hub.close()
        assert second.drain()[-1].type == EVENT_CLOSED
        with pytest.raises(ServiceError):
            hub.subscribe(["core"])

    def test_force_resync_reanchors_everyone(self):
        hub = SubscriptionHub()
        sub = hub.subscribe(["core"])
        hub.publish(self._delta(1), self._snapshot)
        hub.force_resync(lambda: self._snapshot(2), reason="delta computation failed")
        events = sub.drain()
        assert [e.type for e in events] == [EVENT_RESYNC]
        assert sub.superseded == 1
        assert "failed" in events[0].reason


class TestServiceIntegration:
    def test_each_edit_pushes_a_consecutive_versioned_delta(
        self, small_catalog, weak_view, q_schema
    ):
        async def main():
            async with CatalogService(small_catalog) as service:
                sub = service.subscribe(["core", "equivalence_classes", "dominance"])
                await service.add_view("Zextra", weak_view)
                await service.add_view(
                    "Zcopy",
                    small_catalog["Split"].renamed({"W1": "X1", "W2": "X2"}),
                )
                await service.drop_view("Zextra")
                return sub.drain(), service.metrics(), service.delta_log()

        events, metrics, log = run(main())
        assert [e.version for e in events] == [1, 2, 3]
        assert all(e.type == EVENT_DELTA for e in events)
        assert events[0].delta.views_added == ("Zextra",)
        assert events[2].delta.views_dropped == ("Zextra",)
        assert sorted(log) == [1, 2, 3]
        assert metrics.subscribers == 1
        assert metrics.deltas_published == 3
        assert metrics.deltas_delivered == 3
        assert metrics.push_p95_s >= metrics.push_p50_s >= 0.0
        rendered = metrics.to_dict()["subscriptions"]
        assert rendered["deltas_published"] == 3
        assert rendered["push_total_s"] > 0.0

    def test_failed_edit_pushes_nothing(self, small_catalog, q_schema):
        other = DatabaseSchema([RelationName("r", "AB")])
        stray = View(
            [(parse_expression("r", other), RelationName("S1", "AB"))], other
        )

        async def main():
            async with CatalogService(small_catalog) as service:
                sub = service.subscribe(["core", "dominance"])
                bad = await service.add_view("Stray", stray)
                return bad, sub.drain(), service.metrics()

        bad, events, metrics = run(main())
        assert bad.status == "refused"
        assert events == []
        assert metrics.deltas_published == 0

    def test_service_close_terminates_subscribers(self, small_catalog):
        async def main():
            service = CatalogService(small_catalog)
            await service.start()
            sub = service.subscribe(["core"])
            await service.close()
            return sub.get_nowait()

        assert run(main()).type == EVENT_CLOSED

    def test_async_iteration_terminates_on_close(self, small_catalog, weak_view):
        async def main():
            seen = []
            async with CatalogService(small_catalog) as service:
                sub = service.subscribe(["core", "dominance", "equivalence_classes"])
                await service.add_view("Zextra", weak_view)

                async def consume():
                    async for event in sub:
                        seen.append(event)

                consumer = asyncio.get_running_loop().create_task(consume())
                await asyncio.sleep(0)
            await asyncio.wait_for(consumer, timeout=5)
            return seen

        seen = run(main())
        assert len(seen) == 1 and seen[0].type == EVENT_DELTA

    def test_history_window_bounds_history_and_log(
        self, small_catalog, weak_view, q_schema
    ):
        copy = small_catalog["Split"].renamed({"W1": "X1", "W2": "X2"})

        async def main():
            async with CatalogService(
                small_catalog, track_history=True, history_window=2
            ) as service:
                await service.add_view("Zextra", weak_view)   # v1
                await service.drop_view("Zextra")             # v2
                await service.add_view("Zcopy", copy)         # v3
                late = service.subscribe(["core"], from_version=0)
                recent = service.subscribe(["core", "dominance"], from_version=2)
                return (
                    service.catalog_history(),
                    service.delta_log(),
                    late.drain(),
                    recent.drain(),
                )

        history, log, late_events, recent_events = run(main())
        assert sorted(history) == [2, 3]
        assert sorted(log) == [2, 3]
        # Past the window: snapshot resync.  Inside it: coalesced catch-up
        # (version 3 touched the core via the added copy? regardless, any
        # relevant retained delta coalesces; no event at all is also legal
        # when nothing matched the topics).
        assert [e.type for e in late_events] == [EVENT_RESYNC]
        assert late_events[0].version == 3
        for event in recent_events:
            assert event.type == EVENT_DELTA and event.catch_up

    def test_subscribe_rejects_future_version(self, small_catalog):
        async def main():
            async with CatalogService(small_catalog) as service:
                service.subscribe(["core"], from_version=5)

        with pytest.raises(ServiceError):
            run(main())


class TestTrafficVerification:
    @pytest.mark.parametrize("seed", [7, 19])
    def test_seeded_traffic_folds_bit_identically(self, seed):
        schema = random_schema(
            SchemaSpec(relations=3, arity=2, universe_size=4), seed=seed
        )
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2, atoms_per_query=2,
            seed=seed,
        )
        events = traffic_mix(
            schema, catalog, requests=30, edit_rate=0.3, seed=seed
        )
        specs = subscriber_mix(catalog, subscribers=3, seed=seed)
        lane = run_traffic(catalog, events, jobs=2, subscriber_specs=specs)
        assert lane["verdict"]["mismatches"] == []
        verdict = lane["subscriptions"]["verdict"]
        assert verdict["mismatches"] == []
        assert verdict["silent_drops"] == 0
        assert verdict["versions_checked"] == lane["metrics"].edits
        assert verdict["subscribers_checked"] == 3

    def test_verifier_flags_a_corrupted_delta(self, small_catalog, weak_view):
        async def main():
            async with CatalogService(small_catalog, track_history=True) as service:
                await service.add_view("Zextra", weak_view)
                return service.catalog_history(), service.delta_log()

        history, log = run(main())
        honest = verify_subscriptions(history, log)
        assert honest["mismatches"] == []
        # Corrupt the core accounting of the only delta: the fold must
        # diverge from the fresh analyzer and be reported.
        from dataclasses import replace

        corrupted = {
            1: replace(log[1], core_entered=log[1].core_entered + ("Weak",))
        }
        verdict = verify_subscriptions(history, corrupted)
        assert verdict["mismatches"]
        assert any(m.get("topic") == "core" for m in verdict["mismatches"])

    def test_verifier_flags_missing_versions(self, small_catalog, weak_view):
        async def main():
            async with CatalogService(small_catalog, track_history=True) as service:
                await service.add_view("Zextra", weak_view)
                await service.drop_view("Zextra")
                return service.catalog_history(), service.delta_log()

        history, log = run(main())
        del log[1]
        verdict = verify_subscriptions(history, log)
        assert any("no delta retained" in m.get("error", "") for m in verdict["mismatches"])

    def test_verifier_flags_ledger_imbalance(self, small_catalog, weak_view):
        async def main():
            async with CatalogService(small_catalog, track_history=True) as service:
                sub = service.subscribe(["core", "dominance", "equivalence_classes"])
                await service.add_view("Zextra", weak_view)
                events = sub.drain()
                return (
                    service.catalog_history(),
                    service.delta_log(),
                    events,
                    sub.stats(),
                )

        history, log, events, stats = run(main())
        # Simulate a silently dropped delta: the consumer never saw it and
        # nothing was superseded.
        stats = dict(stats, consumed=0, pending=0)
        verdict = verify_subscriptions(
            history,
            log,
            [{"topics": ("core", "dominance", "equivalence_classes"),
              "events": [], "stats": stats}],
        )
        assert verdict["silent_drops"] == 1
        assert any("unaccounted" in m.get("error", "") for m in verdict["mismatches"])


class TestDeltaSoundnessProperty:
    """Satellite: delta-folded state == fresh analyzer state, every version.

    Hypothesis drives random edit sequences (add a renamed copy, add a
    fresh view, drop an added view) against the incremental engine; at
    every version the chained deltas fold over the version-0 snapshot and
    must reconstruct the fresh serial analyzer's core, equivalence classes
    and dominance matrix bit-identically.  Sheds/refusals are excluded by
    construction — only committed edits produce versions.
    """

    def test_random_edit_sequences_fold_bit_identically(self, q_schema):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        split = View(
            [
                (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
                (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
            ],
            q_schema,
        )
        joined = View(
            [
                (
                    parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                    RelationName("V1", "ABC"),
                )
            ],
            q_schema,
        )
        weak = View(
            [(parse_expression("pi{A}(q)", q_schema), RelationName("Y1", "A"))],
            q_schema,
        )
        weak_b = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )
        pool = [
            split,
            joined,
            weak,
            weak_b,
            split.renamed({"W1": "P1", "W2": "P2"}),
            joined.renamed({"V1": "Q1"}),
        ]
        base_catalog = {"Split": split, "Joined": joined}

        ops = st.lists(
            st.tuples(st.sampled_from(["add", "drop"]), st.integers(0, len(pool) - 1)),
            min_size=1,
            max_size=6,
        )

        @settings(max_examples=20, deadline=None)
        @given(ops=ops)
        def check(ops):
            current = CatalogAnalyzer(base_catalog)
            version = 0
            previous_states = [current]
            deltas = []
            added: list = []
            for op, index in ops:
                if op == "add" or not added:
                    name = f"T{len(deltas)}x"
                    derived = current.with_view(name, pool[index])
                    added.append(name)
                else:
                    name = added.pop(index % len(added))
                    derived = current.without_view(name)
                version += 1
                deltas.append(derived.diff(current, version=version))
                current = derived
                previous_states.append(current)
                # Fold the chain so far; compare against a *fresh* serial
                # analyzer on the same views at this version.
                fresh = CatalogAnalyzer(current.views)
                assert folded_equals_fresh(previous_states[0], deltas, fresh)

        check()
