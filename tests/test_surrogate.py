"""Tests for surrogate queries (Theorem 1.4.2)."""

import pytest

from repro.exceptions import ViewError
from repro.relalg import evaluate, parse_expression
from repro.relational import RelationName
from repro.relational.generators import random_instantiation
from repro.views import View, answer_view_query, surrogate_query


@pytest.fixture
def view_vocab(split_view):
    """A tiny schema made of the view names of ``split_view`` for writing view queries."""

    from repro.relational import DatabaseSchema

    return DatabaseSchema(split_view.view_names)


class TestSurrogateQuery:
    def test_surrogate_references_only_base_relations(self, split_view, view_vocab):
        view_query = parse_expression("W1 & W2", view_vocab)
        surrogate = surrogate_query(split_view, view_query)
        assert surrogate.relation_names <= split_view.underlying_schema.relation_names

    def test_surrogate_rejects_foreign_names(self, split_view, q_schema):
        base_query = parse_expression("q", q_schema)
        with pytest.raises(ViewError):
            surrogate_query(split_view, base_query)

    def test_theorem_1_4_2_identity(self, split_view, view_vocab, q_schema):
        # E-hat(alpha) == E(alpha_V) for every view query and instantiation.
        view_queries = ["W1", "pi{A}(W1)", "W1 & W2", "pi{A,C}(W1 & W2)", "pi{B}(W2)"]
        for text in view_queries:
            view_query = parse_expression(text, view_vocab)
            surrogate = surrogate_query(split_view, view_query)
            for seed in range(3):
                alpha = random_instantiation(
                    q_schema, tuples_per_relation=15, seed=seed, domain_size=5
                )
                direct = evaluate(surrogate, alpha)
                through_view = answer_view_query(split_view, view_query, alpha)
                assert direct == through_view

    def test_surrogate_of_plain_view_name_is_defining_query(self, split_view, view_vocab):
        view_query = parse_expression("W1", view_vocab)
        surrogate = surrogate_query(split_view, view_query)
        assert surrogate == split_view.definition_for("W1").query

    def test_surrogate_preserves_target_scheme(self, split_view, view_vocab):
        view_query = parse_expression("pi{A,C}(W1 & W2)", view_vocab)
        assert surrogate_query(split_view, view_query).target_scheme == view_query.target_scheme

    def test_answer_view_query_uses_induced_instance(self, split_view, view_vocab, q_instance):
        view_query = parse_expression("W1", view_vocab)
        answer = answer_view_query(split_view, view_query, q_instance)
        assert answer == evaluate(split_view.definition_for("W1").query, q_instance)
