"""Tests for the exception hierarchy and the immutability of value objects."""

import pytest

from repro import exceptions
from repro.relalg import parse_expression
from repro.relational import (
    Attribute,
    Constant,
    DatabaseSchema,
    Instantiation,
    Relation,
    RelationName,
    RelationScheme,
)
from repro.relational.tuples import tuple_from_values
from repro.templates import TaggedTuple, Template, atomic_template
from repro.views import View


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "specific",
        [
            exceptions.SchemaError,
            exceptions.DomainError,
            exceptions.InstanceError,
            exceptions.ExpressionError,
            exceptions.ExpressionParseError,
            exceptions.TemplateError,
            exceptions.SubstitutionError,
            exceptions.NotAnExpressionTemplateError,
            exceptions.ViewError,
            exceptions.CapacityError,
            exceptions.CatalogError,
            exceptions.WorkloadError,
        ],
    )
    def test_every_error_is_a_repro_error(self, specific):
        assert issubclass(specific, exceptions.ReproError)

    def test_parse_error_is_an_expression_error(self):
        assert issubclass(exceptions.ExpressionParseError, exceptions.ExpressionError)

    def test_substitution_and_recognition_errors_are_template_errors(self):
        assert issubclass(exceptions.SubstitutionError, exceptions.TemplateError)
        assert issubclass(exceptions.NotAnExpressionTemplateError, exceptions.TemplateError)

    def test_library_failures_catchable_with_single_except(self, q_schema):
        caught = 0
        for action in (
            lambda: RelationScheme([]),
            lambda: parse_expression("pi{A}(", q_schema),
            lambda: Template([]),
            lambda: View([], q_schema),
        ):
            try:
                action()
            except exceptions.ReproError:
                caught += 1
        assert caught == 4


class TestImmutability:
    def test_scheme_immutable(self):
        scheme = RelationScheme("AB")
        with pytest.raises(AttributeError):
            scheme.attributes = frozenset()  # type: ignore[misc]

    def test_relation_name_immutable(self):
        name = RelationName("R", "AB")
        with pytest.raises(AttributeError):
            name.name = "S"  # type: ignore[misc]

    def test_relation_and_tuple_immutable(self):
        tup = tuple_from_values("AB", {"A": 1, "B": 2})
        rel = Relation("AB", [tup])
        with pytest.raises(AttributeError):
            tup.scheme = None  # type: ignore[misc]
        with pytest.raises(AttributeError):
            rel.tuples = frozenset()  # type: ignore[misc]

    def test_instantiation_immutable(self):
        alpha = Instantiation()
        with pytest.raises(AttributeError):
            alpha.assignment = {}  # type: ignore[misc]

    def test_expression_immutable(self, q_schema):
        expression = parse_expression("pi{A}(q)", q_schema)
        with pytest.raises(AttributeError):
            expression.target_scheme = None  # type: ignore[misc]

    def test_template_and_tagged_tuple_immutable(self):
        name = RelationName("R", "AB")
        template = atomic_template(name)
        row = next(iter(template.rows))
        with pytest.raises(AttributeError):
            template.rows = frozenset()  # type: ignore[misc]
        with pytest.raises(AttributeError):
            row.name = name  # type: ignore[misc]

    def test_view_immutable(self, split_view):
        with pytest.raises(AttributeError):
            split_view.definitions = ()  # type: ignore[misc]

    def test_value_objects_usable_in_sets(self, q_schema):
        # The whole library relies on hashability of its value objects.
        items = {
            Attribute("A"),
            Constant(Attribute("A"), 1),
            RelationScheme("AB"),
            RelationName("R", "AB"),
            tuple_from_values("A", {"A": 1}),
            Relation("A", []),
            Instantiation(),
            parse_expression("pi{A}(q)", q_schema),
            atomic_template(RelationName("R", "AB")),
        }
        assert len(items) == 9
