"""Tests for redundancy analysis (Section 3.1)."""

import pytest

from repro.relalg import parse_expression
from repro.relational import RelationName
from repro.views import (
    View,
    is_nonredundant_query_set,
    is_nonredundant_view,
    is_redundant_member,
    nonredundant_query_set,
    nonredundant_size_bound,
    redundancy_report,
    remove_redundancy,
    views_equivalent,
)


@pytest.fixture
def s_queries(q_schema):
    s1 = parse_expression("pi{A,B}(q)", q_schema)
    s2 = parse_expression("pi{B,C}(q)", q_schema)
    s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
    return s1, s2, s


class TestRedundantMembers:
    def test_example_3_1_1_join_is_redundant(self, s_queries):
        s1, s2, s = s_queries
        assert is_redundant_member([s, s1, s2], s)

    def test_example_3_1_1_projections_nonredundant_alone(self, s_queries):
        s1, s2, _s = s_queries
        assert not is_redundant_member([s1, s2], s1)
        assert not is_redundant_member([s1, s2], s2)

    def test_projections_redundant_in_presence_of_join(self, s_queries):
        s1, s2, s = s_queries
        assert is_redundant_member([s, s1, s2], s1)
        assert is_redundant_member([s, s1, s2], s2)

    def test_single_member_never_redundant(self, s_queries):
        s1, _s2, _s = s_queries
        assert not is_redundant_member([s1], s1)

    def test_duplicates_do_not_mask_redundancy(self, s_queries, q_schema):
        # A query equivalent to the member must not be used to "justify" it.
        s1, _s2, _s = s_queries
        s1_copy = parse_expression("pi{B,A}(q)", q_schema)
        assert not is_redundant_member([s1, s1_copy], s1)


class TestNonredundantQuerySets:
    def test_nonredundant_set_detection(self, s_queries):
        s1, s2, s = s_queries
        assert is_nonredundant_query_set([s1, s2])
        assert not is_nonredundant_query_set([s, s1, s2])

    def test_duplicate_queries_make_set_redundant(self, s_queries):
        s1, _s2, _s = s_queries
        assert not is_nonredundant_query_set([s1, s1])

    def test_nonredundant_query_set_removes_derivable_members(self, s_queries):
        s1, s2, s = s_queries
        survivors = nonredundant_query_set([s1, s2, s])
        assert 1 <= len(survivors) <= 2
        assert is_nonredundant_query_set(survivors)

    def test_result_generates_same_closure(self, s_queries, q_schema):
        s1, s2, s = s_queries
        survivors = nonredundant_query_set([s1, s2, s])
        from repro.views import closure_contains

        for original in (s1, s2, s):
            assert closure_contains(survivors, original)


class TestViews:
    def test_remove_redundancy_yields_equivalent_view(self, q_schema, s_queries):
        s1, s2, s = s_queries
        padded = View(
            [
                (s, RelationName("VJ", "ABC")),
                (s1, RelationName("V1", "AB")),
                (s2, RelationName("V2", "BC")),
            ],
            q_schema,
        )
        slim = remove_redundancy(padded)
        assert len(slim) < len(padded)
        assert views_equivalent(slim, padded)
        assert is_nonredundant_view(slim)

    def test_theorem_3_1_4_every_view_has_nonredundant_equivalent(self, split_view, joined_view):
        for view in (split_view, joined_view):
            slim = remove_redundancy(view)
            assert is_nonredundant_view(slim)
            assert views_equivalent(slim, view)

    def test_example_3_1_5_both_views_nonredundant(self, split_view, joined_view):
        # Equivalent nonredundant views of different sizes (1 vs 2 members).
        assert is_nonredundant_view(split_view)
        assert is_nonredundant_view(joined_view)
        assert len(split_view) != len(joined_view)

    def test_size_bound_lemma_3_1_6(self, split_view, joined_view):
        # The bound n = sum #RN(T_i) must dominate every equivalent
        # nonredundant view's size; here both 1 and 2 stay below their bounds.
        assert nonredundant_size_bound(joined_view) >= len(split_view)
        assert nonredundant_size_bound(split_view) >= len(joined_view)

    def test_redundancy_report_fields(self, q_schema, s_queries):
        s1, s2, s = s_queries
        padded = View(
            [
                (s, RelationName("VJ", "ABC")),
                (s1, RelationName("V1", "AB")),
                (s2, RelationName("V2", "BC")),
            ],
            q_schema,
        )
        report = redundancy_report(padded)
        assert report.view_size == 3
        assert not report.is_nonredundant
        assert report.nonredundant_size <= 2
        assert report.size_bound >= report.nonredundant_size
        assert set(name.name for name in report.redundant_names) >= {"VJ"}

    def test_report_on_nonredundant_view(self, split_view):
        report = redundancy_report(split_view)
        assert report.is_nonredundant
        assert report.redundant_names == ()
        assert report.nonredundant_size == len(split_view)
