"""Unit tests for expression evaluation and expansion (Lemma 1.4.1)."""

import pytest

from repro.exceptions import ExpressionError
from repro.relalg.ast import Join, Projection, RelationRef
from repro.relalg.evaluate import evaluate, expressions_equivalent
from repro.relalg.expand import expand_expression
from repro.relalg.parser import parse_expression
from repro.relational.schema import RelationName
from repro.relational.tuples import Relation
from repro.relational.generators import random_instantiation


class TestEvaluate:
    def test_atom_evaluates_to_assigned_relation(self, rs_schema, rs_instance):
        result = evaluate(parse_expression("R", rs_schema), rs_instance)
        assert result == rs_instance.relation(rs_schema["R"])

    def test_projection(self, rs_schema, rs_instance):
        result = evaluate(parse_expression("pi{A}(R)", rs_schema), rs_instance)
        assert result == Relation.from_values("A", [{"A": 1}, {"A": 3}, {"A": 5}])

    def test_join(self, rs_schema, rs_instance):
        result = evaluate(parse_expression("R & S", rs_schema), rs_instance)
        assert result == Relation.from_values(
            "ABC",
            [{"A": 1, "B": 2, "C": 10}, {"A": 5, "B": 2, "C": 10}],
        )

    def test_projection_of_join(self, rs_schema, rs_instance):
        result = evaluate(parse_expression("pi{A,C}(R & S)", rs_schema), rs_instance)
        assert result == Relation.from_values("AC", [{"A": 1, "C": 10}, {"A": 5, "C": 10}])

    def test_unassigned_relation_is_empty(self, rs_schema):
        from repro.relational.instance import Instantiation

        result = evaluate(parse_expression("R & S", rs_schema), Instantiation())
        assert len(result) == 0

    def test_self_join_is_identity(self, rs_schema, rs_instance):
        result = evaluate(parse_expression("R & R", rs_schema), rs_instance)
        assert result == rs_instance.relation(rs_schema["R"])


class TestExpressionsEquivalent:
    def test_projection_pushdown_equivalence(self, rs_schema):
        left = parse_expression("pi{A,C}(R & S)", rs_schema)
        right = parse_expression("pi{A,C}(pi{A,B}(R) & S)", rs_schema)
        assert expressions_equivalent(left, right)

    def test_join_commutativity(self, rs_schema):
        assert expressions_equivalent(
            parse_expression("R & S", rs_schema), parse_expression("S & R", rs_schema)
        )

    def test_self_join_idempotence(self, rs_schema):
        assert expressions_equivalent(
            parse_expression("R & R", rs_schema), parse_expression("R", rs_schema)
        )

    def test_different_projection_not_equivalent(self, rs_schema):
        assert not expressions_equivalent(
            parse_expression("pi{A}(R)", rs_schema), parse_expression("pi{B}(R)", rs_schema)
        )

    def test_different_relation_names_not_equivalent(self, rs_schema):
        assert not expressions_equivalent(
            parse_expression("pi{B}(R)", rs_schema), parse_expression("pi{B}(S)", rs_schema)
        )

    def test_equivalence_agrees_with_random_evaluation(self, rs_schema):
        pairs = [
            ("pi{A,C}(R & S)", "pi{A,C}(pi{A,B}(R) & S)", True),
            ("pi{B}(R)", "pi{B}(R & S)", False),
            ("R & S", "S & R", True),
        ]
        alpha = random_instantiation(rs_schema, tuples_per_relation=15, seed=11, domain_size=6)
        for left_text, right_text, expected in pairs:
            left = parse_expression(left_text, rs_schema)
            right = parse_expression(right_text, rs_schema)
            assert expressions_equivalent(left, right) is expected
            if expected:
                assert evaluate(left, alpha) == evaluate(right, alpha)


class TestExpand:
    def test_expand_replaces_names(self, rs_schema):
        v = RelationName("V", "AC")
        view_query = RelationRef(v)
        replacement = parse_expression("pi{A,C}(R & S)", rs_schema)
        expanded = expand_expression(view_query, {v: replacement})
        assert expanded == replacement

    def test_expand_inside_structure(self, rs_schema):
        v = RelationName("V", "AC")
        view_query = Projection(RelationRef(v), "A")
        replacement = parse_expression("pi{A,C}(R & S)", rs_schema)
        expanded = expand_expression(view_query, {v: replacement})
        assert expanded == Projection(replacement, "A")

    def test_expand_requires_matching_type(self, rs_schema):
        v = RelationName("V", "AC")
        with pytest.raises(ExpressionError):
            expand_expression(RelationRef(v), {v: parse_expression("R", rs_schema)})

    def test_expand_partial_by_default(self, rs_schema):
        expr = parse_expression("R & S", rs_schema)
        assert expand_expression(expr, {}) == expr

    def test_expand_total_requires_all_names(self, rs_schema):
        expr = parse_expression("R & S", rs_schema)
        with pytest.raises(ExpressionError):
            expand_expression(expr, {}, require_total=True)

    def test_expansion_semantics_lemma_1_4_1(self, rs_schema, rs_instance):
        # E over a view name, expanded, must equal E over the induced instance.
        v = RelationName("V", "AC")
        defining = parse_expression("pi{A,C}(R & S)", rs_schema)
        view_query = Projection(RelationRef(v), "C")
        expanded = expand_expression(view_query, {v: defining})
        induced = rs_instance.with_relation(v, evaluate(defining, rs_instance))
        assert evaluate(expanded, rs_instance) == evaluate(view_query, induced)
