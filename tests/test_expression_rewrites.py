"""Unit tests for expression normalisation and proper projections."""

import pytest

from repro.relalg.ast import Join, Projection, RelationRef
from repro.relalg.evaluate import expressions_equivalent
from repro.relalg.parser import parse_expression
from repro.relalg.rewrites import count_projection_targets, normalize_expression, proper_projections
from repro.relational.schema import scheme


class TestNormalize:
    def test_collapse_nested_projections(self, rs_schema):
        expr = parse_expression("pi{A}(pi{A,B}(R))", rs_schema)
        normalised = normalize_expression(expr)
        assert isinstance(normalised, Projection)
        assert isinstance(normalised.child, RelationRef)
        assert normalised.target_scheme == scheme("A")

    def test_drop_identity_projection(self, rs_schema):
        expr = parse_expression("pi{A,B}(R)", rs_schema)
        assert normalize_expression(expr) == parse_expression("R", rs_schema)

    def test_flatten_nested_joins(self, rs_schema):
        nested = Join(
            (
                RelationRef(rs_schema["R"]),
                Join((RelationRef(rs_schema["S"]), RelationRef(rs_schema["R"]))),
            )
        )
        flattened = normalize_expression(nested)
        assert isinstance(flattened, Join)
        assert len(flattened.operands) == 3

    def test_normalisation_preserves_mapping(self, rs_schema):
        texts = [
            "pi{A}(pi{A,B}(R))",
            "pi{A,B}(R)",
            "pi{A,C}(pi{A,B,C}(R & S))",
            "(R & (S & R))",
        ]
        for text in texts:
            expr = parse_expression(text, rs_schema)
            assert expressions_equivalent(expr, normalize_expression(expr))

    def test_normalisation_idempotent(self, rs_schema):
        expr = parse_expression("pi{A}(pi{A,B}(R & (S & R)))", rs_schema)
        once = normalize_expression(expr)
        assert normalize_expression(once) == once

    def test_atoms_untouched(self, rs_schema):
        expr = parse_expression("R", rs_schema)
        assert normalize_expression(expr) is expr


class TestProperProjections:
    def test_count(self, rs_schema):
        expr = parse_expression("R & S", rs_schema)  # TRS = ABC
        assert count_projection_targets(expr) == 6
        assert len(list(proper_projections(expr))) == 6

    def test_all_are_proper_subsets(self, rs_schema):
        expr = parse_expression("R & S", rs_schema)
        for projection in proper_projections(expr):
            assert projection.target_scheme.issubset(expr.target_scheme)
            assert projection.target_scheme != expr.target_scheme
            assert len(projection.target_scheme) >= 1

    def test_largest_first(self, rs_schema):
        expr = parse_expression("R & S", rs_schema)
        sizes = [len(p.target_scheme) for p in proper_projections(expr)]
        assert sizes == sorted(sizes, reverse=True)

    def test_single_attribute_expression_has_none(self, rs_schema):
        expr = parse_expression("pi{A}(R)", rs_schema)
        assert list(proper_projections(expr)) == []
