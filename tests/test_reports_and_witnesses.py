"""Tests for report dataclasses, dominance witnesses and construction objects."""

import pytest

from repro.core.report import DefinitionSummary, ViewAnalysisReport
from repro.relalg import format_expression, parse_expression
from repro.templates import templates_equivalent
from repro.views import dominates, find_construction, named_generators


class TestDefinitionSummary:
    def test_fields_round_trip(self):
        summary = DefinitionSummary(
            name="V1",
            target_scheme="AB",
            template_rows=2,
            reduced_rows=1,
            relation_names=("q",),
            redundant=False,
            simple=True,
        )
        assert summary.name == "V1"
        assert summary.relation_names == ("q",)
        assert not summary.redundant and summary.simple


class TestViewAnalysisReport:
    def _report(self):
        return ViewAnalysisReport(
            view_size=2,
            underlying_relations=("q",),
            view_relations=("V1", "V2"),
            definitions=(
                DefinitionSummary("V1", "AB", 1, 1, ("q",), False, True),
                DefinitionSummary("V2", "BC", 1, 1, ("q",), False, True),
            ),
            nonredundant_size=2,
            size_bound=2,
            is_nonredundant=True,
            is_simplified=True,
            simplified_size=2,
            simplified_members=("pi{A,B}(q)", "pi{B,C}(q)"),
        )

    def test_to_dict_is_json_friendly(self):
        import json

        payload = self._report().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_summary_lines_cover_every_definition(self):
        lines = self._report().summary_lines()
        assert sum(1 for line in lines if line.strip().startswith("-")) == 2

    def test_report_is_immutable(self):
        report = self._report()
        with pytest.raises(Exception):
            report.view_size = 99  # type: ignore[misc]


class TestDominanceWitness:
    def test_witness_constructions_verify(self, joined_view, split_view):
        witness = dominates(joined_view, split_view)
        assert witness.holds
        for name, construction in witness.constructions.items():
            defining = split_view.definition_for(name.name).query
            assert construction.verify(defining)

    def test_missing_names_reported(self, split_view, q_schema):
        from repro.relational import RelationName
        from repro.views import View

        weak = View(
            [(parse_expression("pi{A}(q)", q_schema), RelationName("PA", "A"))], q_schema
        )
        witness = dominates(weak, split_view)
        assert not witness.holds
        assert set(name.name for name in witness.missing) == {"W1", "W2"}


class TestConstructionObject:
    def test_fields_are_consistent(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        generators = named_generators([s1, s2])
        goal = parse_expression("pi{B}(pi{A,B}(q) & pi{B,C}(q))", q_schema)
        construction = find_construction(generators, goal)
        assert construction is not None
        # The outer template only mentions generator names.
        assert construction.outer_template.relation_names <= set(generators)
        # The substituted template realises the goal.
        assert construction.verify(goal)
        # The rewriting realises the outer template's mapping.
        from repro.templates import template_from_expression

        assert templates_equivalent(
            template_from_expression(construction.rewriting), construction.outer_template
        )

    def test_rewriting_is_printable(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        generators = named_generators([s1])
        construction = find_construction(generators, parse_expression("pi{A}(q)", q_schema))
        text = format_expression(construction.rewriting)
        assert "G0" in text
