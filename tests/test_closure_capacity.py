"""Tests for constructions, closure membership and query capacity (Sections 1.5, 2.3, 2.4)."""

import pytest

from repro.relalg import format_expression, parse_expression
from repro.relational import RelationName
from repro.templates import substitute, templates_equivalent, template_from_expression
from repro.views import (
    QueryCapacity,
    SearchLimits,
    View,
    closure_contains,
    find_construction,
    iter_constructions,
    named_generators,
)


class TestClosureContains:
    def test_generators_belong_to_their_closure(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        assert closure_contains([s1, s2], s1)
        assert closure_contains([s1, s2], s2)

    def test_closed_under_projection(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        assert closure_contains([s1], parse_expression("pi{A}(q)", q_schema))
        assert closure_contains([s1], parse_expression("pi{B}(q)", q_schema))

    def test_closed_under_join(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        joined = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        assert closure_contains([s1, s2], joined)

    def test_base_relation_not_in_projection_closure(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        assert not closure_contains([s1, s2], parse_expression("q", q_schema))

    def test_unrelated_relation_not_in_closure(self, rs_schema):
        r_only = parse_expression("pi{A,B}(R)", rs_schema)
        assert not closure_contains([r_only], parse_expression("S", rs_schema))

    def test_join_then_project_composition(self, rs_schema):
        v1 = parse_expression("pi{A,B}(R)", rs_schema)
        v2 = parse_expression("pi{B,C}(S)", rs_schema)
        goal = parse_expression("pi{A,C}(pi{A,B}(R) & pi{B,C}(S))", rs_schema)
        assert closure_contains([v1, v2], goal)

    def test_weaker_views_cannot_rebuild_stronger_query(self, rs_schema):
        # pi_A(R) and pi_B(R) cannot reconstruct pi_AB(R): joining them loses
        # the correlation between A and B values.
        v1 = parse_expression("pi{A}(R)", rs_schema)
        v2 = parse_expression("pi{B}(R)", rs_schema)
        assert not closure_contains([v1, v2], parse_expression("pi{A,B}(R)", rs_schema))

    def test_goal_accepts_templates(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        goal = template_from_expression(parse_expression("pi{A}(q)", q_schema))
        assert closure_contains([s1], goal)

    def test_named_generators_mint_typed_names(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        generators = named_generators([s1])
        (name, template), = generators.items()
        assert name.type == template.target_scheme


class TestFindConstruction:
    def test_construction_witness_verifies(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        goal = parse_expression("pi{A,C}(pi{A,B}(q) & pi{B,C}(q))", q_schema)
        construction = find_construction(named_generators([s1, s2]), goal)
        assert construction is not None
        assert construction.verify(goal)

    def test_substituted_template_matches_goal(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        goal = parse_expression("pi{A}(q)", q_schema)
        construction = find_construction(named_generators([s1]), goal)
        assert templates_equivalent(
            construction.substituted, template_from_expression(goal)
        )

    def test_rewriting_is_over_generator_names(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        generators = named_generators([s1, s2])
        goal = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        construction = find_construction(generators, goal)
        assert construction.rewriting is not None
        assert construction.rewriting.relation_names <= set(generators)

    def test_outer_template_bounded_by_goal_rows(self, q_schema):
        # Lemma 2.4.8: a construction with at most #rows(goal) rows exists.
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        goal = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        goal_rows = len(template_from_expression(goal))
        construction = find_construction(named_generators([s1, s2]), goal)
        assert len(construction.outer_template) <= goal_rows

    def test_returns_none_for_non_members(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        assert find_construction(named_generators([s1]), parse_expression("q", q_schema)) is None

    def test_iter_constructions_yields_multiple_witnesses(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        generators = named_generators([s1, s2])
        goal = parse_expression("pi{B}(q)", q_schema)
        witnesses = list(iter_constructions(generators, goal))
        # pi_B can be built from either generator (and from their join).
        assert len(witnesses) >= 2
        for witness in witnesses:
            assert witness.verify(goal)

    def test_search_limits_respected(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        goal = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        tight = SearchLimits(max_subsets=0)
        assert find_construction(named_generators([s1, s2]), goal, tight) is None


class TestQueryCapacity:
    def test_capacity_contains_generators(self, split_view):
        capacity = QueryCapacity(split_view)
        for query in capacity.generator_queries():
            assert capacity.contains(query)

    def test_capacity_closed_under_projection_and_join(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        assert capacity.contains(parse_expression("pi{B}(q)", q_schema))
        assert capacity.contains(parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema))

    def test_capacity_excludes_base_relation(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        assert not capacity.contains(parse_expression("q", q_schema))
        assert parse_expression("q", q_schema) not in capacity

    def test_contains_operator(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        assert parse_expression("pi{A}(q)", q_schema) in capacity
        assert "not a query" not in capacity

    def test_explain_produces_view_rewriting(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        goal = parse_expression("pi{A,C}(pi{A,B}(q) & pi{B,C}(q))", q_schema)
        construction = capacity.explain(goal)
        assert construction is not None
        rewritten_names = {name.name for name in construction.rewriting.relation_names}
        assert rewritten_names <= {"W1", "W2"}

    def test_answerable_through_view_alias(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        assert capacity.answerable_through_view(parse_expression("pi{A}(q)", q_schema))

    def test_theorem_1_5_2_capacity_is_closure_of_defining_queries(self, split_view, q_schema):
        # Membership answers must agree with a direct closure query on the
        # defining queries (Theorem 1.5.2: Cap(V) = closure of the defining set).
        capacity = QueryCapacity(split_view)
        probes = ["pi{A}(q)", "pi{B,C}(q)", "pi{A,B}(q) & pi{B,C}(q)", "q", "pi{A,C}(q)"]
        for text in probes:
            probe = parse_expression(text, q_schema)
            assert capacity.contains(probe) == closure_contains(
                list(split_view.defining_queries), probe
            )

    def test_capacity_of_identity_view_contains_everything_over_base(self, rs_schema):
        # A view exposing R and S verbatim can answer any project-join query.
        identity = View(
            [
                (parse_expression("R", rs_schema), RelationName("VR", "AB")),
                (parse_expression("S", rs_schema), RelationName("VS", "BC")),
            ],
            rs_schema,
        )
        capacity = QueryCapacity(identity)
        for text in ["R", "S", "pi{A,C}(R & S)", "pi{B}(R & S)", "R & S"]:
            assert capacity.contains(parse_expression(text, rs_schema))
