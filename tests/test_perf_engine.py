"""Property-style tests for the indexed + memoized decision engine.

The optimised hot paths (indexed homomorphism search, memoized reduction,
cover-guided construction search — see PERFORMANCE.md) are cross-checked on
randomly generated small templates against three independent references:

* :func:`repro.templates.canonical.has_homomorphism_via_canonical` — the
  chase-style evaluation oracle;
* :mod:`repro.baselines.seed_engine` — the preserved pre-optimisation
  implementations;
* :mod:`repro.baselines.naive_capacity` — the paper's literal ``J_k``
  enumeration.

Every agreement test runs with the memo tables both enabled and disabled
(the ``cache_mode`` fixture), so the cached and uncached paths are each
held to the oracles.
"""

from __future__ import annotations

import pytest

from repro.baselines import naive_closure_contains
from repro.baselines.seed_engine import (
    seed_closure_contains,
    seed_has_homomorphism,
    seed_iter_foldings,
    seed_iter_homomorphisms,
    seed_reduce_template,
)
from repro.perf import (
    LRUCache,
    cache_stats,
    caches_enabled,
    clear_caches,
    configure,
    template_signature,
)
from repro.relational.attributes import Constant
from repro.templates.canonical import has_homomorphism_via_canonical
from repro.templates.from_expression import template_from_expression
from repro.templates.homomorphism import (
    has_homomorphism,
    iter_foldings,
    iter_homomorphisms,
    templates_isomorphic,
)
from repro.templates.reduction import is_reduced, reduce_template
from repro.templates.homomorphism import templates_equivalent
from repro.views import closure_contains, dominates, named_generators
from repro.workloads import SchemaSpec, random_expression, random_schema, random_view


@pytest.fixture(params=["cached", "uncached"])
def cache_mode(request):
    """Run the test body with memo tables enabled and, separately, disabled.

    The teardown restores whatever enablement state the session started
    with, so running the suite under ``REPRO_PERF_CACHE=0`` keeps later
    test files on the uncached paths.
    """

    previous = caches_enabled()
    if request.param == "uncached":
        configure(enabled=False)
    else:
        configure(enabled=True)
        clear_caches()
    yield request.param
    configure(enabled=previous)
    clear_caches()


@pytest.fixture
def cache_state_guard():
    """Restore the global cache enablement state after a test body."""

    previous = caches_enabled()
    yield
    configure(enabled=previous)
    clear_caches()


def _random_templates(seed, count=12, relations=2, arity=2, universe=4, max_atoms=3):
    schema = random_schema(
        SchemaSpec(relations=relations, arity=arity, universe_size=universe), seed=seed
    )
    templates = []
    for index in range(count):
        atoms = 1 + (index % max_atoms)
        expression = random_expression(schema, atoms=atoms, seed=seed * 1000 + index)
        templates.append(template_from_expression(expression))
    return schema, templates


class TestHomomorphismAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_indexed_search_matches_canonical_oracle_and_seed(self, cache_mode, seed):
        _, templates = _random_templates(seed)
        for i, source in enumerate(templates):
            for target in templates[i:]:
                expected = has_homomorphism_via_canonical(source, target)
                assert has_homomorphism(source, target) == expected
                assert seed_has_homomorphism(source, target) == expected

    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_solution_counts_match_seed_engine(self, cache_mode, seed):
        # The MRV/forward-checking search must enumerate exactly the seed's
        # solution set: one symbol map per consistent complete assignment.
        _, templates = _random_templates(seed, count=6, max_atoms=2)
        for source in templates[:3]:
            for target in templates[3:]:
                ours = list(iter_homomorphisms(source, target))
                seeds = list(seed_iter_homomorphisms(source, target))
                assert len(ours) == len(seeds)
                assert {tuple(sorted((str(k), str(v)) for k, v in m.items())) for m in ours} == {
                    tuple(sorted((str(k), str(v)) for k, v in m.items())) for m in seeds
                }
                assert len(list(iter_foldings(source, target))) == len(
                    list(seed_iter_foldings(source, target))
                )

    def test_homomorphisms_fix_distinguished_symbols(self, cache_mode):
        _, templates = _random_templates(9, count=6)
        for source in templates[:3]:
            for target in templates[3:]:
                for mapping in iter_homomorphisms(source, target):
                    for symbol in source.symbols():
                        assert symbol in mapping
                        if symbol.is_distinguished:
                            assert mapping[symbol] == symbol


class TestReductionAgreement:
    @pytest.mark.parametrize("seed", [11, 12, 13, 14])
    def test_reduction_is_a_core_and_matches_seed(self, cache_mode, seed):
        _, templates = _random_templates(seed, max_atoms=4)
        for template in templates:
            reduced = reduce_template(template)
            assert is_reduced(reduced)
            assert templates_equivalent(template, reduced)
            assert reduced.rows <= template.rows
            # Cores are unique up to isomorphism.
            assert len(reduced) == len(seed_reduce_template(template))


class TestMembershipAgreement:
    CASES = [
        ("pi{A}(q)", ["pi{A,B}(q)"]),
        ("pi{A,B}(q) & pi{B,C}(q)", ["pi{A,B}(q)", "pi{B,C}(q)"]),
        ("pi{A,C}(q)", ["pi{A,B}(q)", "pi{B,C}(q)"]),
        ("q", ["pi{A,B}(q)", "pi{B,C}(q)"]),
    ]

    @pytest.mark.parametrize("goal_text,generator_texts", CASES)
    def test_agrees_with_naive_enumeration(
        self, cache_mode, q_schema, goal_text, generator_texts
    ):
        from repro.relalg import parse_expression

        goal = parse_expression(goal_text, q_schema)
        generators = [parse_expression(text, q_schema) for text in generator_texts]
        assert closure_contains(generators, goal) == naive_closure_contains(
            generators, goal
        )

    @pytest.mark.parametrize("seed", [51, 52, 53])
    def test_agrees_with_naive_enumeration_on_random_instances(self, cache_mode, seed):
        from repro.baselines import NaiveSearchLimits

        schema, templates = _random_templates(
            seed, count=4, relations=2, arity=2, universe=3, max_atoms=2
        )
        generators = named_generators(templates[:2])
        limits = NaiveSearchLimits(max_templates=500_000)
        for goal in templates[2:]:
            assert closure_contains(generators, goal) == naive_closure_contains(
                generators, goal, limits
            )

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_agrees_with_seed_search_on_random_instances(self, cache_mode, seed):
        schema, templates = _random_templates(seed, count=8, max_atoms=2)
        generators = named_generators(templates[:3])
        for goal in templates[3:]:
            assert closure_contains(generators, goal) == seed_closure_contains(
                generators, goal
            )

    @pytest.mark.parametrize("seed", [31, 32])
    def test_dominance_agrees_with_seed_engine(self, cache_mode, seed):
        from repro.baselines.seed_engine import seed_dominates

        schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=seed)
        first = random_view(schema, members=2, atoms_per_query=2, seed=seed)
        second = random_view(schema, members=2, atoms_per_query=2, seed=seed + 100)
        for dominating, dominated in [(first, second), (second, first), (first, first)]:
            assert (
                dominates(dominating, dominated).holds
                == seed_dominates(dominating, dominated)
            )


class TestCanonicalSignatures:
    def test_signature_invariant_under_symbol_renaming(self, rs_schema):
        from repro.relalg import parse_expression

        template = template_from_expression(
            parse_expression("pi{A,C}(R & S & pi{B}(R))", rs_schema)
        )
        renaming = {
            symbol: Constant(symbol.attribute, ("renamed", index))
            for index, symbol in enumerate(sorted(template.nondistinguished_symbols(), key=str))
        }
        renamed = template.replace_symbols(renaming)
        assert template != renamed
        assert template_signature(template) == template_signature(renamed)

    def test_equal_signatures_imply_isomorphism(self, cache_mode):
        _, templates = _random_templates(41, count=10, max_atoms=3)
        for i, first in enumerate(templates):
            for second in templates[i + 1 :]:
                first_sig = template_signature(first)
                second_sig = template_signature(second)
                if first_sig is None or second_sig is None:
                    # Budget overflow carries no information either way.
                    continue
                if first_sig == second_sig:
                    assert templates_isomorphic(first, second)
                else:
                    assert not templates_isomorphic(first, second)

    def test_independently_generated_equal_expressions_share_a_signature(self, rs_schema):
        from repro.relalg import parse_expression

        first = template_from_expression(parse_expression("R & S", rs_schema))
        second = template_from_expression(parse_expression("R & S", rs_schema))
        assert template_signature(first) == template_signature(second)

    def test_signature_distinguishes_structure(self, rs_schema):
        from repro.relalg import parse_expression

        first = template_from_expression(parse_expression("R & S", rs_schema))
        second = template_from_expression(parse_expression("pi{A,C}(R & S)", rs_schema))
        assert template_signature(first) != template_signature(second)


class TestCoverGuidedEnumeration:
    def test_only_covering_subsets_are_enumerated(self, q_schema):
        import itertools

        from repro.relalg import parse_expression
        from repro.views.closure import _covering_subsets, as_template

        goal = as_template(parse_expression("q", q_schema))
        target_attrs = frozenset(goal.target_scheme.attributes)
        rows = sorted(goal.rows, key=str)
        attr_sets = [row.distinguished_attributes() for row in rows]
        enumerated = list(_covering_subsets(attr_sets, target_attrs, len(rows)))
        # Reference: a blind combinations sweep filtered by the cover test.
        expected = [
            indices
            for size in range(1, len(rows) + 1)
            for indices in itertools.combinations(range(len(rows)), size)
            if frozenset().union(*(attr_sets[i] for i in indices)) >= target_attrs
        ]
        assert enumerated == expected

    def test_uncoverable_goal_enumerates_nothing(self, q_schema):
        from repro.relalg import parse_expression
        from repro.views.closure import _covering_subsets, as_template

        goal = as_template(parse_expression("q", q_schema))
        target_attrs = frozenset(goal.target_scheme.attributes)
        # Candidate rows that only ever cover A can never reach {A, B, C}.
        partial = [frozenset(list(target_attrs)[:1])] * 3
        assert list(_covering_subsets(partial, target_attrs, 3)) == []


class TestMemoTables:
    def test_lru_eviction_and_stats(self):
        cache = LRUCache("test.tmp_eviction", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert len(cache) == 2
        found, _ = cache.lookup("a")
        assert not found
        found, value = cache.lookup("b")
        assert found and value == 2
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.hits == 1
        assert stats.misses == 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_lookup_refreshes_recency(self):
        cache = LRUCache("test.tmp_recency", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.lookup("a")  # "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.lookup("a")[0]
        assert not cache.lookup("b")[0]

    def test_repeated_queries_hit_the_memo_tables(self, cache_state_guard, q_schema):
        from repro.relalg import parse_expression

        configure(enabled=True)
        clear_caches()
        generators = named_generators(
            [
                parse_expression("pi{A,B}(q)", q_schema),
                parse_expression("pi{B,C}(q)", q_schema),
            ]
        )
        goal = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        assert closure_contains(generators, goal)
        cold = cache_stats()
        assert closure_contains(generators, goal)
        warm = cache_stats()
        table = "closure.find_construction"
        assert warm[table].hits > cold[table].hits
        assert warm[table].hit_rate > 0.0

    def test_configure_disables_and_reenables(self, cache_state_guard):
        configure(enabled=False)
        assert not caches_enabled()
        configure(enabled=True)
        assert caches_enabled()

    def test_clear_caches_resets_counters(self, cache_state_guard, q_schema):
        from repro.relalg import parse_expression

        configure(enabled=True)
        generators = named_generators([parse_expression("pi{A,B}(q)", q_schema)])
        closure_contains(generators, parse_expression("pi{A}(q)", q_schema))
        clear_caches()
        for stats in cache_stats().values():
            assert stats.hits == 0
            assert stats.misses == 0
            assert stats.size == 0
