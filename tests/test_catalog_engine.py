"""The batched catalog engine: determinism, thread-safety, cross-checks.

The contract under test: every backend of :class:`repro.engine.CatalogAnalyzer`
(serial, thread pool, process pool) produces **bit-identical** results — equal
to each other, to per-pair :class:`repro.core.ViewAnalyzer` calls, and to the
preserved seed engine — with memo tables enabled and disabled; and the
incremental update paths agree with analysing the updated catalog from
scratch.
"""

from __future__ import annotations

import os

import pytest

from repro import CatalogAnalyzer, ViewAnalyzer
from repro.baselines.seed_engine import seed_closure_contains, seed_dominates
from repro.engine import view_signature
from repro.exceptions import CapacityError
from repro.perf import caches_enabled, clear_caches, configure
from repro.relalg import parse_expression
from repro.relational import DatabaseSchema, RelationName
from repro.views import SearchLimits, View, closure_contains
from repro.views.equivalence import dominates, update_dominance
from repro.views.redundancy import redundant_members
from repro.workloads import (
    SchemaSpec,
    cold_membership_instance,
    random_schema,
    view_catalog,
)

#: Worker count for the parallel lanes.  The default of 2 makes every
#: ordinary test run a ``--jobs 2`` lane; CI additionally re-runs the engine
#: subset with REPRO_CATALOG_JOBS=4 for wider fan-out coverage.
JOBS = int(os.environ.get("REPRO_CATALOG_JOBS", "2"))


@pytest.fixture(params=["cached", "uncached"])
def cache_mode(request):
    """Run the test body with memo tables enabled and, separately, disabled."""

    previous = caches_enabled()
    if request.param == "uncached":
        configure(enabled=False)
    else:
        configure(enabled=True)
        clear_caches()
    yield request.param
    configure(enabled=previous)
    clear_caches()


@pytest.fixture
def small_catalog(q_schema):
    split = View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("V1", "ABC"),
            )
        ],
        q_schema,
    )
    weak = View(
        [(parse_expression("pi{A}(q)", q_schema), RelationName("Y1", "A"))], q_schema
    )
    return {
        "Split": split,
        "Joined": joined,
        "Copy": split.renamed({"W1": "X1", "W2": "X2"}),
        "Weak": weak,
    }


@pytest.fixture
def random_catalog():
    schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=23)
    return view_catalog(
        schema, classes=3, copies_per_class=2, members=2, atoms_per_query=2, seed=9
    )


def _per_pair_matrix(catalog, limits=SearchLimits()):
    return {
        (a, b): ViewAnalyzer(catalog[a], limits).dominates(catalog[b])
        for a in catalog
        for b in catalog
        if a != b
    }


class TestCrossChecks:
    def test_matches_per_pair_view_analyzer(self, small_catalog, cache_mode):
        matrix = CatalogAnalyzer(small_catalog).dominance_matrix()
        assert matrix == _per_pair_matrix(small_catalog)

    def test_matches_seed_engine(self, small_catalog, cache_mode):
        matrix = CatalogAnalyzer(small_catalog).dominance_matrix()
        seed = {
            (a, b): seed_dominates(small_catalog[a], small_catalog[b])
            for a in small_catalog
            for b in small_catalog
            if a != b
        }
        assert matrix == seed

    def test_random_catalog_matches_both(self, random_catalog, cache_mode):
        matrix = CatalogAnalyzer(random_catalog).dominance_matrix()
        assert matrix == _per_pair_matrix(random_catalog)
        assert matrix == {
            (a, b): seed_dominates(random_catalog[a], random_catalog[b])
            for a in random_catalog
            for b in random_catalog
            if a != b
        }

    def test_report_reflexive_and_consistent(self, small_catalog):
        report = CatalogAnalyzer(small_catalog).analyze()
        for name in report.names:
            assert report.dominates(name, name)
        assert report.equivalent("Split", "Copy")
        assert report.equivalent("Split", "Joined")
        assert not report.equivalent("Split", "Weak")
        assert report.nonredundant_core == ("Copy",)


class TestParallelDeterminism:
    def test_thread_pool_bit_identical_to_serial(self, small_catalog, cache_mode):
        serial = CatalogAnalyzer(small_catalog, jobs=1).analyze()
        threaded = CatalogAnalyzer(small_catalog, jobs=JOBS).analyze()
        assert threaded.dominance == serial.dominance
        assert threaded.equivalence_classes == serial.equivalence_classes
        assert threaded.nonredundant_core == serial.nonredundant_core

    def test_thread_pool_deterministic_across_runs(self, random_catalog, cache_mode):
        first = CatalogAnalyzer(random_catalog, jobs=JOBS).dominance_matrix()
        second = CatalogAnalyzer(random_catalog, jobs=JOBS).dominance_matrix()
        assert first == second
        assert first == CatalogAnalyzer(random_catalog, jobs=1).dominance_matrix()

    def test_process_pool_bit_identical_to_serial(self, small_catalog):
        serial = CatalogAnalyzer(small_catalog, jobs=1).dominance_matrix()
        processed = CatalogAnalyzer(
            small_catalog, jobs=2, executor="process"
        ).dominance_matrix()
        assert processed == serial

    @pytest.mark.parametrize("chunksize", [1, 3, 100])
    def test_process_pool_chunked_identical(self, small_catalog, chunksize):
        # The chunked submission is a dispatch optimisation only: any chunk
        # size (smaller, straddling, larger than the pair count) must produce
        # the exact serial matrix.
        serial = CatalogAnalyzer(small_catalog, jobs=1).dominance_matrix()
        chunked = CatalogAnalyzer(
            small_catalog, jobs=2, executor="process", chunksize=chunksize
        ).dominance_matrix()
        assert chunked == serial

    def test_process_chunksize_heuristic(self):
        from repro.engine import process_chunksize

        # Explicit chunk sizes win and are floored at 1.
        assert process_chunksize(240, 4, chunksize=7) == 7
        assert process_chunksize(240, 4, chunksize=0) == 1
        # The default targets about four chunks per worker.
        assert process_chunksize(240, 4) == 15
        assert process_chunksize(3, 4) == 1
        assert process_chunksize(0, 4) == 1

    def test_many_threads_on_one_catalog_object(self, random_catalog):
        # Thread-safety of the shared capacities and memo tables: hammer one
        # analyzer from several workers and require the serial answer.
        clear_caches()
        analyzer = CatalogAnalyzer(random_catalog, jobs=max(JOBS, 4))
        assert (
            analyzer.dominance_matrix()
            == CatalogAnalyzer(random_catalog, jobs=1).dominance_matrix()
        )


class TestSignatureDedup:
    def test_renamed_copies_share_a_class(self, small_catalog):
        analyzer = CatalogAnalyzer(small_catalog)
        classes = analyzer.signature_classes()
        assert ("Copy", "Split") in classes
        assert view_signature(small_catalog["Split"]) == view_signature(
            small_catalog["Copy"]
        )

    def test_dedup_decides_fewer_pairs(self, random_catalog):
        report = CatalogAnalyzer(random_catalog).analyze()
        n = len(random_catalog)
        assert report.decided_pairs < n * (n - 1)
        assert report.decided_pairs + report.broadcast_pairs == n * (n - 1)

    def test_signature_ignores_member_names(self, random_catalog):
        for name, view in random_catalog.items():
            renamed = view.renamed({n.name: f"{n.name}zz" for n in view.view_names})
            assert view_signature(view) == view_signature(renamed)


class TestIncremental:
    def test_with_view_add_matches_fresh(self, small_catalog, q_schema):
        extra = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )
        base = CatalogAnalyzer(small_catalog)
        base.dominance_matrix()
        incremental = base.with_view("Extra", extra).analyze()
        fresh = CatalogAnalyzer({**small_catalog, "Extra": extra}).analyze()
        assert incremental.dominance == fresh.dominance
        assert incremental.nonredundant_core == fresh.nonredundant_core

    def test_with_view_replace_member_gain_matches_fresh(self, small_catalog, q_schema):
        base = CatalogAnalyzer(small_catalog)
        base.dominance_matrix()
        grown = View(
            list(small_catalog["Weak"].definitions)
            + [(parse_expression("pi{C}(q)", q_schema), RelationName("Y2", "C"))],
            q_schema,
        )
        incremental = base.with_view("Weak", grown).dominance_matrix()
        updated = {**small_catalog, "Weak": grown}
        assert incremental == CatalogAnalyzer(updated).dominance_matrix()

    def test_decision_reuse_counts(self, small_catalog, q_schema):
        analyzer = CatalogAnalyzer(small_catalog)
        present, needed = analyzer.decision_reuse()
        assert present == 0 and needed > 0
        analyzer.dominance_matrix()
        present, needed = analyzer.decision_reuse()
        assert present == needed  # fully materialised
        # A renamed copy whose name sorts after its original keeps the old
        # representative: the derived analyzer inherits every decision.
        copy = small_catalog["Split"].renamed({"W1": "X1", "W2": "X2"})
        derived = analyzer.with_view("Zcopy", copy)
        present, needed = derived.decision_reuse()
        assert present == needed > 0
        # Dropping a non-representative view keeps the matrix complete too.
        shrunk = analyzer.without_view("Weak")
        present, needed = shrunk.decision_reuse()
        assert present == needed

    def test_representative_stickiness_on_smaller_named_copy(
        self, small_catalog, q_schema
    ):
        # Regression: an edit adding a *lexicographically smaller* copy of
        # an existing view used to steal its signature class's headship
        # (members[0]) and force the whole matrix to re-decide pairs the
        # derivation had inherited verbatim.  The head must stay sticky on
        # an already-decided member, so decision_reuse() reports a complete
        # matrix after exactly this edit pattern.
        analyzer = CatalogAnalyzer(small_catalog)
        analyzer.dominance_matrix()
        acopy = small_catalog["Split"].renamed({"W1": "A1", "W2": "A2"})
        derived = analyzer.with_view("Acopy", acopy)  # sorts before "Copy"
        present, needed = derived.decision_reuse()
        assert present == needed > 0  # nothing to re-decide
        # Stickiness is a reuse optimisation only — verdicts are unchanged.
        fresh = CatalogAnalyzer({**small_catalog, "Acopy": acopy})
        assert derived.dominance_matrix() == fresh.dominance_matrix()
        assert derived.nonredundant_core() == fresh.nonredundant_core()
        # Same pattern through a replacement-free drop: removing the sticky
        # head itself falls back to a fresh head without breaking verdicts.
        dropped = derived.without_view("Copy")
        fresh_dropped = CatalogAnalyzer(
            {k: v for k, v in {**small_catalog, "Acopy": acopy}.items() if k != "Copy"}
        )
        assert dropped.dominance_matrix() == fresh_dropped.dominance_matrix()

    def test_without_view_matches_fresh(self, small_catalog):
        base = CatalogAnalyzer(small_catalog)
        base.dominance_matrix()
        incremental = base.without_view("Joined").analyze()
        fresh = CatalogAnalyzer(
            {k: v for k, v in small_catalog.items() if k != "Joined"}
        ).analyze()
        assert incremental.dominance == fresh.dominance
        assert incremental.equivalence_classes == fresh.equivalence_classes

    def test_update_dominance_matches_fresh(self, small_catalog, q_schema):
        dominating = small_catalog["Joined"]
        old = small_catalog["Weak"]
        witness = dominates(dominating, old)
        grown = View(
            list(old.definitions)
            + [(parse_expression("pi{B,C}(q)", q_schema), RelationName("Y2", "BC"))],
            q_schema,
        )
        refreshed = update_dominance(dominating, grown, witness, old)
        fresh = dominates(dominating, grown)
        assert refreshed.holds == fresh.holds
        assert set(refreshed.constructions) == set(fresh.constructions)
        assert refreshed.missing == fresh.missing

    def test_redundant_members_known_skip(self, q_schema):
        queries = [
            parse_expression("pi{A,B}(q)", q_schema),
            parse_expression("pi{B,C}(q)", q_schema),
            parse_expression("pi{A}(q)", q_schema),
            parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
        ]
        full = redundant_members(queries)
        # Every member lies in the closure of the others here: 2 and 3 are
        # derivable from 0 and 1, and 0/1 are projections of the join 3.
        assert full == (0, 1, 2, 3)
        # Monotone skip: declaring members known-redundant must reproduce the
        # full answer without re-deciding them; out-of-range hints are ignored.
        assert redundant_members(queries, known_redundant=(2,)) == full
        assert redundant_members(queries, known_redundant=(0, 3, 99)) == full
        # A genuinely nonredundant set stays empty whatever is hinted absent.
        independent = [queries[0], queries[1]]
        assert redundant_members(independent) == ()


class TestSharedLimits:
    def test_one_limits_object_flows_everywhere(self, small_catalog):
        limits = SearchLimits(max_subsets=5_000)
        analyzer = CatalogAnalyzer(small_catalog, limits=limits)
        assert analyzer.limits is limits
        for name in small_catalog:
            assert analyzer.capacity(name).limits is limits
            assert analyzer.analyzer(name).capacity.limits is limits

    def test_starved_limits_identical_serial_and_parallel(self, small_catalog):
        limits = SearchLimits(max_candidates=2, max_subsets=3)
        serial = CatalogAnalyzer(small_catalog, limits=limits, jobs=1).dominance_matrix()
        threaded = CatalogAnalyzer(
            small_catalog, limits=limits, jobs=JOBS
        ).dominance_matrix()
        assert serial == threaded

    def test_view_analyzer_adopts_capacity_limits(self, small_catalog):
        limits = SearchLimits(max_subsets=123)
        analyzer = CatalogAnalyzer(small_catalog, limits=limits)
        shared = analyzer.analyzer("Split")
        assert shared.capacity is analyzer.capacity("Split")

    def test_view_analyzer_rejects_conflicting_inputs(self, small_catalog):
        analyzer = CatalogAnalyzer(small_catalog)
        capacity = analyzer.capacity("Split")
        with pytest.raises(ValueError):
            ViewAnalyzer(small_catalog["Joined"], capacity=capacity)
        with pytest.raises(ValueError):
            ViewAnalyzer(capacity=capacity, limits=SearchLimits(max_subsets=1))
        with pytest.raises(TypeError):
            ViewAnalyzer()


class TestValidation:
    def test_rejects_empty_catalog(self):
        with pytest.raises(CapacityError):
            CatalogAnalyzer({})

    def test_rejects_mixed_schemas(self, small_catalog):
        other_schema = DatabaseSchema([RelationName("r", "AB")])
        stray = View(
            [(parse_expression("r", other_schema), RelationName("S1", "AB"))],
            other_schema,
        )
        with pytest.raises(CapacityError):
            CatalogAnalyzer({**small_catalog, "Stray": stray})

    def test_rejects_bad_jobs_and_executor(self, small_catalog):
        with pytest.raises(CapacityError):
            CatalogAnalyzer(small_catalog, jobs=0)
        with pytest.raises(CapacityError):
            CatalogAnalyzer(small_catalog, executor="fibers")


class TestColdPathPrechecks:
    @pytest.mark.parametrize("hopeless", [False, True])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_large_instances_agree_with_seed(self, hopeless, seed, cache_mode):
        schema = random_schema(
            SchemaSpec(relations=4, arity=2, universe_size=5), seed=7
        )
        generators, goal = cold_membership_instance(
            schema,
            generator_count=3,
            generator_atoms=2,
            goal_atoms=4,
            seed=seed,
            hopeless=hopeless,
        )
        assert closure_contains(generators, goal) == seed_closure_contains(
            generators, goal
        )

    def test_hopeless_instances_are_negative(self):
        schema = random_schema(
            SchemaSpec(relations=4, arity=2, universe_size=5), seed=7
        )
        for seed in (1, 2, 3):
            generators, goal = cold_membership_instance(
                schema, seed=seed, hopeless=True
            )
            assert not closure_contains(generators, goal)

    def test_derivable_instances_are_positive(self):
        schema = random_schema(
            SchemaSpec(relations=4, arity=2, universe_size=5), seed=7
        )
        for seed in (1, 2, 3):
            generators, goal = cold_membership_instance(
                schema, seed=seed, hopeless=False
            )
            assert closure_contains(generators, goal)
