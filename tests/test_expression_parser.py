"""Unit tests for the expression DSL parser and printer."""

import pytest

from repro.exceptions import ExpressionParseError
from repro.relalg.ast import Join, Projection, RelationRef
from repro.relalg.parser import parse_expression
from repro.relalg.printer import format_expression
from repro.relational.schema import scheme


class TestParser:
    def test_atom(self, rs_schema):
        expr = parse_expression("R", rs_schema)
        assert isinstance(expr, RelationRef)
        assert expr.name == rs_schema["R"]

    def test_projection(self, rs_schema):
        expr = parse_expression("pi{A}(R)", rs_schema)
        assert isinstance(expr, Projection)
        assert expr.target_scheme == scheme("A")

    def test_multi_attribute_projection(self, rs_schema):
        expr = parse_expression("pi{A,B}(R)", rs_schema)
        assert expr.target_scheme == scheme("AB")

    def test_join_with_ampersand(self, rs_schema):
        expr = parse_expression("R & S", rs_schema)
        assert isinstance(expr, Join)
        assert len(expr.operands) == 2

    def test_join_with_bowtie_token(self, rs_schema):
        assert parse_expression("R |x| S", rs_schema) == parse_expression("R & S", rs_schema)

    def test_chained_join_is_nary(self, rs_schema):
        expr = parse_expression("R & S & R", rs_schema)
        assert isinstance(expr, Join)
        assert len(expr.operands) == 3

    def test_parentheses_grouping(self, rs_schema):
        expr = parse_expression("(R & S)", rs_schema)
        assert isinstance(expr, Join)

    def test_nested_expression(self, rs_schema):
        expr = parse_expression("pi{A,C}(R & pi{B,C}(S))", rs_schema)
        assert expr.target_scheme == scheme("AC")

    def test_whitespace_insensitive(self, rs_schema):
        assert parse_expression(" pi { A } ( R ) ", rs_schema) == parse_expression(
            "pi{A}(R)", rs_schema
        )

    def test_unknown_relation_rejected(self, rs_schema):
        with pytest.raises(ExpressionParseError):
            parse_expression("T", rs_schema)

    def test_unbalanced_parentheses_rejected(self, rs_schema):
        with pytest.raises(ExpressionParseError):
            parse_expression("pi{A}(R", rs_schema)

    def test_empty_input_rejected(self, rs_schema):
        with pytest.raises(ExpressionParseError):
            parse_expression("   ", rs_schema)

    def test_trailing_garbage_rejected(self, rs_schema):
        with pytest.raises(ExpressionParseError):
            parse_expression("R )", rs_schema)

    def test_invalid_character_rejected(self, rs_schema):
        with pytest.raises(ExpressionParseError):
            parse_expression("R + S", rs_schema)

    def test_projection_outside_trs_rejected(self, rs_schema):
        # parser defers to AST validation for scheme errors
        with pytest.raises(Exception):
            parse_expression("pi{C}(R)", rs_schema)


class TestPrinterRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "R",
            "pi{A}(R)",
            "(R & S)",
            "pi{A,C}((R & S))",
            "pi{A,C}((pi{A,B}(R) & S))",
            "(R & S & R)",
        ],
    )
    def test_round_trip(self, rs_schema, text):
        expr = parse_expression(text, rs_schema)
        reparsed = parse_expression(format_expression(expr), rs_schema)
        assert reparsed == expr

    def test_printer_output_format(self, rs_schema):
        expr = parse_expression("pi{A,C}(R & S)", rs_schema)
        assert format_expression(expr) == "pi{A,C}((R & S))"
