"""Tests for template evaluation, Algorithm 2.1.1 and the template algebra.

These tests check Proposition 2.1.2 (the template built from an expression
realises the same mapping) and the correctness of evaluation via
alpha-embeddings against direct expression evaluation.
"""

import pytest

from repro.relalg.evaluate import evaluate
from repro.relalg.parser import parse_expression
from repro.relational.generators import random_instantiation
from repro.relational.schema import scheme
from repro.templates.algebra import join_templates, project_template
from repro.templates.embedding import embedding_count, evaluate_template, iter_embeddings
from repro.templates.from_expression import template_from_expression
from repro.templates.homomorphism import templates_equivalent
from repro.exceptions import TemplateError

EXPRESSIONS = [
    "R",
    "pi{A}(R)",
    "pi{B}(R)",
    "(R & S)",
    "pi{A,C}(R & S)",
    "pi{A,C}(pi{A,B}(R) & S)",
    "pi{B}(R & S)",
    "(R & S & R)",
    "(pi{A,B}(R) & pi{B,C}(S))",
    "pi{C}(pi{B,C}(R & S) & S)",
]


class TestAlgorithm211:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_template_realises_expression_mapping(self, rs_schema, text):
        expression = parse_expression(text, rs_schema)
        template = template_from_expression(expression)
        assert template.target_scheme == expression.target_scheme
        assert template.relation_names == expression.relation_names
        for seed in (0, 1):
            alpha = random_instantiation(
                rs_schema, tuples_per_relation=12, seed=seed, domain_size=5
            )
            assert evaluate_template(template, alpha) == evaluate(expression, alpha)

    def test_atom_template_has_all_distinguished_row(self, rs_schema):
        template = template_from_expression(parse_expression("R", rs_schema))
        assert len(template) == 1
        assert next(iter(template.rows)).is_all_distinguished()

    def test_projection_creates_shared_symbol(self, rs_schema):
        # pi_C(R & S): the projected-away B must become one shared symbol.
        template = template_from_expression(parse_expression("pi{C}(R & S)", rs_schema))
        column_b = template.symbols_in_column(scheme("B").sorted_attributes()[0])
        nondistinguished = {s for s in column_b if not s.is_distinguished}
        assert len(nondistinguished) == 1

    def test_join_keeps_branches_symbol_disjoint(self, rs_schema):
        template = template_from_expression(
            parse_expression("(pi{A}(R) & pi{C}(S))", rs_schema)
        )
        components = template.connected_component_rows()
        assert len(components) == 2

    def test_duplicate_atoms_collapse(self, rs_schema):
        template = template_from_expression(parse_expression("R & R", rs_schema))
        assert len(template) == 1

    def test_row_count_matches_distinct_atom_usage(self, rs_schema):
        template = template_from_expression(parse_expression("pi{A,C}(R & S)", rs_schema))
        assert len(template) == 2


class TestEmbeddings:
    def test_embedding_count_matches_join_size(self, rs_schema, rs_instance):
        template = template_from_expression(parse_expression("R & S", rs_schema))
        assert embedding_count(template, rs_instance) == 2

    def test_no_embeddings_into_empty_instance(self, rs_schema):
        from repro.relational.instance import Instantiation

        template = template_from_expression(parse_expression("R & S", rs_schema))
        assert embedding_count(template, Instantiation()) == 0

    def test_embeddings_bind_all_template_symbols(self, rs_schema, rs_instance):
        template = template_from_expression(parse_expression("pi{A,C}(R & S)", rs_schema))
        for binding in iter_embeddings(template, rs_instance):
            assert set(binding) == set(template.symbols())

    def test_evaluation_target_scheme(self, rs_schema, rs_instance):
        template = template_from_expression(parse_expression("pi{A,C}(R & S)", rs_schema))
        assert evaluate_template(template, rs_instance).scheme == scheme("AC")


class TestTemplateAlgebra:
    def test_project_template_realises_projection(self, rs_schema):
        base = template_from_expression(parse_expression("R & S", rs_schema))
        projected = project_template(base, "AC")
        direct = template_from_expression(parse_expression("pi{A,C}(R & S)", rs_schema))
        assert templates_equivalent(projected, direct)

    def test_project_template_requires_subset_of_trs(self, rs_schema):
        base = template_from_expression(parse_expression("pi{A}(R)", rs_schema))
        with pytest.raises(TemplateError):
            project_template(base, "B")

    def test_join_templates_realises_join(self, rs_schema):
        left = template_from_expression(parse_expression("pi{A,B}(R)", rs_schema))
        right = template_from_expression(parse_expression("pi{B,C}(S)", rs_schema))
        joined = join_templates([left, right])
        direct = template_from_expression(
            parse_expression("(pi{A,B}(R) & pi{B,C}(S))", rs_schema)
        )
        assert templates_equivalent(joined, direct)

    def test_join_templates_renames_apart(self, rs_schema):
        # Both operands use a nondistinguished symbol; the join must not glue them.
        left = template_from_expression(parse_expression("pi{A}(R)", rs_schema))
        right = template_from_expression(parse_expression("pi{C}(S)", rs_schema))
        joined = join_templates([left, right])
        assert len(joined.connected_component_rows()) == 2

    def test_join_single_operand_is_identity(self, rs_schema):
        template = template_from_expression(parse_expression("R", rs_schema))
        assert join_templates([template]) == template

    def test_join_templates_requires_operands(self):
        with pytest.raises(TemplateError):
            join_templates([])

    def test_projection_then_join_composition(self, rs_schema, rs_instance):
        base = template_from_expression(parse_expression("R & S", rs_schema))
        composed = join_templates([project_template(base, "AB"), project_template(base, "BC")])
        direct = template_from_expression(
            parse_expression("(pi{A,B}(R & S) & pi{B,C}(R & S))", rs_schema)
        )
        assert templates_equivalent(composed, direct)
        assert evaluate_template(composed, rs_instance) == evaluate_template(direct, rs_instance)
