"""API-surface tests: public exports exist, are documented and importable.

These tests pin the public API: everything advertised in ``__all__`` must be
importable and carry a docstring, so downstream users can rely on
``help(repro)`` and on the names documented in the README.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.relational",
    "repro.relalg",
    "repro.templates",
    "repro.views",
    "repro.core",
    "repro.workloads",
    "repro.catalog",
    "repro.baselines",
    "repro.perf",
    "repro.cli",
    "repro.exceptions",
]


class TestPublicApi:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_importable_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a module docstring"

    @pytest.mark.parametrize("module_name", [m for m in PUBLIC_MODULES if m != "repro.exceptions"])
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_top_level_exports_are_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__, f"repro.{name} needs a docstring"

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_classes_expose_documented_methods(self):
        from repro import View, ViewAnalyzer, QueryCapacity

        for cls in (View, ViewAnalyzer, QueryCapacity):
            public_methods = [
                member
                for name, member in inspect.getmembers(cls, inspect.isfunction)
                if not name.startswith("_")
            ]
            assert public_methods, f"{cls.__name__} should expose public methods"
            for method in public_methods:
                assert method.__doc__, f"{cls.__name__}.{method.__name__} needs a docstring"

    def test_exception_classes_documented(self):
        from repro import exceptions

        for name in exceptions.__all__ if hasattr(exceptions, "__all__") else dir(exceptions):
            member = getattr(exceptions, name)
            if inspect.isclass(member) and issubclass(member, Exception):
                assert member.__doc__, f"exceptions.{name} needs a docstring"
