"""Tests for view dominance and equivalence (Theorems 1.5.5 and 2.4.12)."""

import pytest

from repro.exceptions import CapacityError
from repro.relalg import parse_expression
from repro.relational import RelationName
from repro.views import View, dominates, equivalence_report, views_equivalent


@pytest.fixture
def projection_view(q_schema):
    """A strictly weaker view exposing only single attributes of q."""

    return View(
        [
            (parse_expression("pi{A}(q)", q_schema), RelationName("PA", "A")),
            (parse_expression("pi{B}(q)", q_schema), RelationName("PB", "B")),
        ],
        q_schema,
    )


class TestDominance:
    def test_example_3_1_5_mutual_dominance(self, joined_view, split_view):
        assert dominates(joined_view, split_view).holds
        assert dominates(split_view, joined_view).holds

    def test_dominance_witnesses_cover_all_members(self, joined_view, split_view):
        witness = dominates(joined_view, split_view)
        assert set(witness.constructions) == set(split_view.view_names)
        assert witness.missing == ()

    def test_strictly_weaker_view_is_dominated(self, split_view, projection_view):
        assert dominates(split_view, projection_view).holds
        backward = dominates(projection_view, split_view)
        assert not backward.holds
        assert len(backward.missing) >= 1

    def test_dominance_requires_same_underlying_schema(self, split_view, rs_schema):
        other = View(
            [(parse_expression("R", rs_schema), RelationName("VR", "AB"))], rs_schema
        )
        with pytest.raises(CapacityError):
            dominates(split_view, other)

    def test_every_view_dominates_itself(self, split_view):
        assert dominates(split_view, split_view).holds


class TestEquivalence:
    def test_example_3_1_5_views_equivalent(self, joined_view, split_view):
        assert views_equivalent(joined_view, split_view)

    def test_equivalence_is_symmetric(self, joined_view, split_view):
        assert views_equivalent(split_view, joined_view)

    def test_renaming_preserves_equivalence(self, split_view):
        renamed = split_view.renamed({"W1": "Z1", "W2": "Z2"})
        assert views_equivalent(split_view, renamed)

    def test_weaker_view_not_equivalent(self, split_view, projection_view):
        assert not views_equivalent(split_view, projection_view)

    def test_adding_redundant_member_preserves_equivalence(self, split_view, q_schema):
        padded = View(
            list(split_view.definitions)
            + [
                (
                    parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                    RelationName("XJ", "ABC"),
                )
            ],
            q_schema,
        )
        assert views_equivalent(split_view, padded)

    def test_dropping_a_needed_member_breaks_equivalence(self, split_view, q_schema):
        smaller = View([split_view.definitions[0]], q_schema)
        assert not views_equivalent(split_view, smaller)

    def test_equivalence_report_carries_both_directions(self, joined_view, split_view):
        report = equivalence_report(joined_view, split_view)
        assert report.equivalent
        assert report.first_dominates_second.holds
        assert report.second_dominates_first.holds

    def test_equivalence_report_for_non_equivalent_views(self, split_view, projection_view):
        report = equivalence_report(split_view, projection_view)
        assert not report.equivalent
        assert report.first_dominates_second.holds
        assert not report.second_dominates_first.holds
