"""Unit tests for attributes, domains and symbols (repro.relational.attributes)."""

import pytest

from repro.exceptions import DomainError
from repro.relational.attributes import (
    Attribute,
    Constant,
    DistinguishedSymbol,
    MarkedSymbol,
    attributes,
    constant,
    distinguished,
)


class TestAttribute:
    def test_equality_by_name(self):
        assert Attribute("A") == Attribute("A")
        assert Attribute("A") != Attribute("B")

    def test_ordering_by_name(self):
        assert Attribute("A") < Attribute("B")
        assert sorted([Attribute("C"), Attribute("A")])[0] == Attribute("A")

    def test_hashable(self):
        assert len({Attribute("A"), Attribute("A"), Attribute("B")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(DomainError):
            Attribute("")

    def test_attributes_helper(self):
        created = attributes("ABC")
        assert [a.name for a in created] == ["A", "B", "C"]


class TestDistinguishedSymbol:
    def test_one_per_attribute(self):
        assert DistinguishedSymbol(Attribute("A")) == DistinguishedSymbol(Attribute("A"))
        assert distinguished(Attribute("A")) == DistinguishedSymbol(Attribute("A"))

    def test_distinct_across_attributes(self):
        assert DistinguishedSymbol(Attribute("A")) != DistinguishedSymbol(Attribute("B"))

    def test_is_distinguished_flag(self):
        assert DistinguishedSymbol(Attribute("A")).is_distinguished
        assert not Constant(Attribute("A"), 1).is_distinguished

    def test_not_equal_to_constant(self):
        assert DistinguishedSymbol(Attribute("A")) != Constant(Attribute("A"), 0)

    def test_string_rendering(self):
        assert str(DistinguishedSymbol(Attribute("A"))) == "0_A"


class TestConstant:
    def test_equality_by_attribute_and_value(self):
        assert Constant(Attribute("A"), 1) == Constant(Attribute("A"), 1)
        assert Constant(Attribute("A"), 1) != Constant(Attribute("A"), 2)

    def test_domains_are_disjoint(self):
        # The same payload in a different attribute is a different symbol.
        assert Constant(Attribute("A"), 1) != Constant(Attribute("B"), 1)

    def test_constant_helper(self):
        assert constant(Attribute("A"), "x") == Constant(Attribute("A"), "x")

    def test_hashable_payloads_required(self):
        with pytest.raises(DomainError):
            Constant(Attribute("A"), [1, 2])

    def test_immutability(self):
        symbol = Constant(Attribute("A"), 1)
        with pytest.raises(AttributeError):
            symbol.value = 2  # type: ignore[misc]


class TestMarkedSymbol:
    def test_marking_is_injective_in_key_and_base(self):
        attr = Attribute("A")
        base = Constant(attr, 1)
        assert MarkedSymbol(attr, "tau1", base) == MarkedSymbol(attr, "tau1", base)
        assert MarkedSymbol(attr, "tau1", base) != MarkedSymbol(attr, "tau2", base)
        assert MarkedSymbol(attr, "tau1", base) != MarkedSymbol(
            attr, "tau1", Constant(attr, 2)
        )

    def test_marked_symbols_are_nondistinguished(self):
        attr = Attribute("A")
        marked = MarkedSymbol(attr, "tau", Constant(attr, 1))
        assert not marked.is_distinguished

    def test_marked_symbol_attribute_must_match_base(self):
        with pytest.raises(DomainError):
            MarkedSymbol(Attribute("A"), "tau", Constant(Attribute("B"), 1))

    def test_marked_symbol_differs_from_its_base(self):
        attr = Attribute("A")
        base = Constant(attr, 1)
        assert MarkedSymbol(attr, "tau", base) != base

    def test_nested_marking_allowed(self):
        attr = Attribute("A")
        inner = MarkedSymbol(attr, "tau1", Constant(attr, 1))
        outer = MarkedSymbol(attr, "tau2", inner)
        assert outer.base == inner
        assert outer != inner
