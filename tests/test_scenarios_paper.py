"""End-to-end verification of the paper's worked examples (benchmark E9's substance)."""

import pytest

from repro.relalg import parse_expression
from repro.relational import DatabaseSchema
from repro.relational.generators import random_instantiation
from repro.templates import (
    apply_assignment,
    evaluate_template,
    is_expression_template,
    reduce_template,
    substitute,
    templates_equivalent,
)
from repro.views import (
    QueryCapacity,
    dominates,
    is_nonredundant_view,
    is_simplified_view,
    simplified_views_match,
    simplify_view,
    views_equivalent,
)
from repro.workloads import (
    company_scenario,
    example_2_2_2,
    example_3_1_5,
    example_3_2_1,
    section_4_1_example,
    university_scenario,
)


class TestExample222:
    """Figure 1: template substitution behaves as Theorem 2.2.3 promises."""

    def test_substitution_has_six_rows(self):
        example = example_2_2_2()
        assert len(substitute(example.outer, example.assignment).template) == 6

    def test_substitution_composes_on_instances(self):
        example = example_2_2_2()
        substituted = substitute(example.outer, example.assignment).template
        for seed in range(3):
            alpha = random_instantiation(
                example.schema, tuples_per_relation=12, seed=seed, domain_size=4
            )
            assert evaluate_template(substituted, alpha) == evaluate_template(
                example.outer, apply_assignment(example.assignment, alpha)
            )

    def test_corollary_2_2_4_result_is_expression_template(self):
        example = example_2_2_2()
        substituted = substitute(example.outer, example.assignment).template
        assert is_expression_template(example.outer)
        assert is_expression_template(example.s1)
        assert is_expression_template(example.s2)
        assert is_expression_template(substituted)

    def test_outer_template_matches_papers_expression(self):
        # The text notes T == pi_A(eta1) |x| pi_BC(pi_AB(eta2) |x| pi_AC(eta2)).
        example = example_2_2_2()
        expression = parse_expression(
            "pi{A}(eta1) & pi{B,C}(pi{A,B}(eta2) & pi{A,C}(eta2))", example.schema
        )
        from repro.templates import template_from_expression

        assert templates_equivalent(example.outer, template_from_expression(expression))


class TestExample315:
    """Equivalent nonredundant views of different sizes; W is the simplified form."""

    def test_views_equivalent(self):
        example = example_3_1_5()
        assert views_equivalent(example.joined_view, example.split_view)

    def test_both_views_nonredundant(self):
        example = example_3_1_5()
        assert is_nonredundant_view(example.joined_view)
        assert is_nonredundant_view(example.split_view)
        assert len(example.joined_view) != len(example.split_view)

    def test_split_view_is_simplified_joined_is_not(self):
        example = example_3_1_5()
        assert is_simplified_view(example.split_view)
        assert not is_simplified_view(example.joined_view)

    def test_simplifying_joined_view_recovers_split_view(self):
        example = example_3_1_5()
        simplified = simplify_view(example.joined_view)
        assert simplified_views_match(simplified, example.split_view)

    def test_capacity_excludes_base_relation(self):
        example = example_3_1_5()
        capacity = QueryCapacity(example.split_view)
        assert not capacity.contains(parse_expression("q", example.schema))


class TestExample321:
    """Figure 2: the exhibited construction of T from {S, T}."""

    def test_outer_substitution_realises_t(self):
        example = example_3_2_1()
        substituted = substitute(example.outer, example.assignment).template
        assert templates_equivalent(substituted, example.t)

    def test_t_has_two_connected_components(self):
        example = example_3_2_1()
        assert len(reduce_template(example.t).connected_component_rows()) == 2

    def test_t_and_s_are_reduced(self):
        from repro.templates import is_reduced

        example = example_3_2_1()
        assert is_reduced(example.s)
        assert is_reduced(example.t)


class TestSection41:
    def test_simplification_pipeline(self):
        example = section_4_1_example()
        simplified = simplify_view(example.view)
        assert is_simplified_view(simplified)
        assert views_equivalent(simplified, example.view)
        assert len(simplified) >= len(example.view)


class TestRealisticScenarios:
    def test_university_view_cannot_reveal_professor_timeslots_directly(self):
        schema, view = university_scenario()
        capacity = QueryCapacity(view)
        hidden = parse_expression("pi{P,T}(Teaches & Meets)", schema)
        exposed = parse_expression("Meets", schema)
        assert capacity.contains(exposed)
        assert not capacity.contains(parse_expression("Teaches", schema))
        # The professor-timeslot association is not derivable from the view
        # because the course attribute was projected away from the adviser query.
        assert not capacity.contains(hidden)

    def test_company_view_redundancy(self):
        _schema, view = company_scenario()
        assert not is_nonredundant_view(view)

    def test_company_view_capacity_answers_building_lookup(self):
        schema, view = company_scenario()
        capacity = QueryCapacity(view)
        assert capacity.contains(parse_expression("pi{E,B}(WorksIn & Located)", schema))
        assert not capacity.contains(parse_expression("Located", schema))
