"""The concurrency-invariant linter (``repro lint``).

Four pillars, matching the engine's public contracts:

* suppression parsing — the directive grammar, mandatory reasons,
  standalone-vs-trailing targeting, and immunity of docstrings that merely
  document the syntax;
* baseline add / match / expire semantics, including the strict-mode
  failure on stale entries and reason carry-forward on update;
* the JSON report schema (CI archives it; the key sets are pinned);
* one planted-fault fixture pair per shipped rule: the violating file
  fires, its minimally-fixed twin is clean under *every* rule.

Plus the self-hosting property the CI lint job enforces: the repo's own
``src`` + ``tests`` trees lint clean against the committed baseline.
"""

import io
import json
import os
import textwrap

import pytest

from repro.analysis import (
    BaselineError,
    Finding,
    LintConfigError,
    LintError,
    REPORT_SCHEMA_VERSION,
    SUPPRESS_RULE_ID,
    all_rules,
    iter_python_files,
    load_baseline,
    match_baseline,
    parse_suppressions,
    render_json,
    render_text,
    run_lint,
    select_rules,
    update_baseline,
    write_baseline,
)
from repro.analysis.baseline import PLACEHOLDER_REASON
from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")

#: rule id -> fixture stem; every shipped rule must appear here (pinned below).
RULE_FIXTURES = {
    "REPRO-CLOCK": "clock",
    "REPRO-LOCK": "locks",
    "REPRO-ASYNC-BLOCK": "asyncblock",
    "REPRO-HOT-GUARD": "hotguard",
    "REPRO-UNBOUNDED-CACHE": "caches",
    "REPRO-SWALLOW": "swallow",
}


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _finding(rule="REPRO-CLOCK", path="src/x.py", message="msg", line=3, col=1):
    return Finding(
        path=path, line=line, col=col, rule_id=rule, severity="error", message=message
    )


# --------------------------------------------------------------------------
# Suppression parsing
# --------------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_comment_targets_its_own_line(self):
        text = "x = 1\ny = compute()  # repro: allow[REPRO-CLOCK] oracle cross-check\n"
        suppressions, problems = parse_suppressions("m.py", text)
        assert not problems
        assert set(suppressions) == {(2, "REPRO-CLOCK")}
        s = suppressions[(2, "REPRO-CLOCK")]
        assert s.comment_line == 2 and s.target_line == 2
        assert s.reason == "oracle cross-check"

    def test_standalone_comment_targets_next_line(self):
        text = textwrap.dedent(
            """\
            # repro: allow[REPRO-LOCK] snapshot taken before threads start
            y = compute()
            """
        )
        suppressions, problems = parse_suppressions("m.py", text)
        assert not problems
        assert set(suppressions) == {(2, "REPRO-LOCK")}
        assert suppressions[(2, "REPRO-LOCK")].comment_line == 1

    def test_missing_reason_is_a_finding(self):
        text = "y = 1  # repro: allow[REPRO-CLOCK]\n"
        suppressions, problems = parse_suppressions("m.py", text)
        assert not suppressions
        assert len(problems) == 1
        assert problems[0].rule_id == SUPPRESS_RULE_ID
        assert "no reason" in problems[0].message

    def test_malformed_directive_is_a_finding(self):
        text = "y = 1  # repro allow[REPRO-CLOCK] missing the colon\n"
        suppressions, problems = parse_suppressions("m.py", text)
        assert not suppressions
        assert len(problems) == 1
        assert problems[0].rule_id == SUPPRESS_RULE_ID
        assert "unrecognised" in problems[0].message

    def test_prose_mentioning_repro_is_left_alone(self):
        text = "# the repro stack takes stamps off one clock\nx = 1\n"
        suppressions, problems = parse_suppressions("m.py", text)
        assert not suppressions and not problems

    def test_docstrings_documenting_the_syntax_are_immune(self):
        text = textwrap.dedent(
            '''\
            """Write ``# repro: allow[RULE-ID] reason`` to silence one line."""
            PATTERN = "# repro: allow[REPRO-CLOCK] not a real directive"
            '''
        )
        suppressions, problems = parse_suppressions("m.py", text)
        assert not suppressions and not problems

    def test_suppression_silences_the_named_rule(self, tmp_path):
        bad = tmp_path / "stamped.py"
        bad.write_text(
            "import time\n"
            "now = time.time()  # repro: allow[REPRO-CLOCK] wall clock for a report header\n"
        )
        result = run_lint([str(bad)], rule_ids=["REPRO-CLOCK"], scoped=False)
        assert not result.findings
        assert len(result.suppressed) == 1
        finding, suppression = result.suppressed[0]
        assert finding.rule_id == "REPRO-CLOCK"
        assert suppression.reason == "wall clock for a report header"

    def test_unused_suppression_is_reported_not_fatal(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "x = 1  # repro: allow[REPRO-CLOCK] nothing here fires it\n"
        )
        result = run_lint([str(clean)], scoped=False)
        assert not result.findings
        assert len(result.unused_suppressions) == 1
        assert result.exit_status(strict=True) == 0
        assert any(
            "unused-suppression" in line for line in render_text(result, strict=True)
        )


# --------------------------------------------------------------------------
# Baseline semantics
# --------------------------------------------------------------------------
class TestBaseline:
    def test_match_splits_new_baselined_stale(self):
        covered = _finding(message="grandfathered")
        fresh = _finding(message="brand new")
        entries = update_baseline([covered], [])
        new, baselined, stale = match_baseline([covered, fresh], entries)
        assert new == [fresh]
        assert baselined == [covered]
        assert stale == []

    def test_stale_entry_reported_and_fatal_under_strict(self, tmp_path):
        gone = _finding(message="fixed since")
        path = tmp_path / "baseline.json"
        entries = update_baseline([gone], [])
        write_baseline(str(path), entries)
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        result = run_lint([str(clean)], baseline_path=str(path), scoped=False)
        assert not result.findings
        assert len(result.stale_baseline) == 1
        assert result.exit_status(strict=False) == 0
        assert result.exit_status(strict=True) == 1

    def test_update_carries_reasons_forward_and_stamps_placeholder(self):
        old = _finding(message="kept")
        entries = update_baseline([old], [])
        assert entries[0].reason == PLACEHOLDER_REASON
        justified = [
            entry.__class__(**{**entry.__dict__, "reason": "threads not started yet"})
            for entry in entries
        ]
        fresh = _finding(message="newly grandfathered")
        merged = update_baseline([old, fresh], justified)
        by_message = {entry.message: entry.reason for entry in merged}
        assert by_message["kept"] == "threads not started yet"
        assert by_message["newly grandfathered"] == PLACEHOLDER_REASON

    def test_update_drops_expired_entries(self):
        gone = _finding(message="fixed")
        kept = _finding(message="still here")
        entries = update_baseline([gone, kept], [])
        merged = update_baseline([kept], entries)
        assert [entry.message for entry in merged] == ["still here"]

    def test_fingerprint_survives_line_drift(self):
        here = _finding(line=3)
        moved = _finding(line=77)
        assert here.fingerprint == moved.fingerprint
        entries = update_baseline([here], [])
        new, baselined, stale = match_baseline([moved], entries)
        assert not new and not stale and baselined == [moved]

    def test_roundtrip_write_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = update_baseline([_finding()], [])
        write_baseline(str(path), entries)
        assert load_baseline(str(path)) == entries

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            json.dumps([]),
            json.dumps({"version": 99, "entries": []}),
            json.dumps({"version": 1}),
            json.dumps({"version": 1, "entries": [{"rule": "REPRO-CLOCK"}]}),
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": "ab",
                            "rule": "REPRO-CLOCK",
                            "path": "x.py",
                            "message": "m",
                            "reason": "   ",
                        }
                    ],
                }
            ),
        ],
    )
    def test_malformed_baseline_raises(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload)
        with pytest.raises(BaselineError):
            load_baseline(str(path))


# --------------------------------------------------------------------------
# JSON report schema (CI artifact — keys are a contract)
# --------------------------------------------------------------------------
class TestJsonSchema:
    def test_top_level_and_summary_keys_pinned(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        report = render_json(run_lint([str(clean)], scoped=False), strict=True)
        assert set(report) == {
            "schema_version",
            "strict",
            "exit_status",
            "summary",
            "findings",
            "suppressed",
            "baselined",
            "stale_baseline",
            "unused_suppressions",
            "rules",
        }
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert set(report["summary"]) == {
            "files_scanned",
            "new",
            "errors",
            "warnings",
            "suppressed",
            "baselined",
            "stale_baseline",
            "unused_suppressions",
        }

    def test_finding_and_rule_entry_keys_pinned(self):
        result = run_lint(
            [_fixture("clock_bad.py")], rule_ids=["REPRO-CLOCK"], scoped=False
        )
        report = render_json(result)
        assert report["findings"], "fixture must produce findings"
        assert set(report["findings"][0]) == {
            "col",
            "fingerprint",
            "line",
            "message",
            "path",
            "rule",
            "severity",
        }
        assert set(report["rules"][0]) == {
            "id",
            "include",
            "exclude",
            "rationale",
            "severity",
            "summary",
        }

    def test_report_is_json_serialisable_and_stable(self):
        result = run_lint(
            [_fixture("swallow_bad.py")], rule_ids=["REPRO-SWALLOW"], scoped=False
        )
        first = json.dumps(render_json(result, strict=True), sort_keys=True)
        second = json.dumps(render_json(result, strict=True), sort_keys=True)
        assert first == second


# --------------------------------------------------------------------------
# Planted-fault fixture pairs — one per shipped rule
# --------------------------------------------------------------------------
class TestFixturePairs:
    def test_every_shipped_rule_has_a_fixture_pair(self):
        assert {rule.rule_id for rule in all_rules()} == set(RULE_FIXTURES)

    @pytest.mark.parametrize("rule_id,stem", sorted(RULE_FIXTURES.items()))
    def test_bad_fixture_fires_good_twin_is_clean(self, rule_id, stem):
        bad = run_lint(
            [_fixture(f"{stem}_bad.py")], rule_ids=[rule_id], scoped=False
        )
        assert bad.findings, f"{stem}_bad.py must fire {rule_id}"
        assert {f.rule_id for f in bad.findings} == {rule_id}
        good = run_lint([_fixture(f"{stem}_good.py")], scoped=False)
        assert not good.findings, (
            f"{stem}_good.py must be clean under every rule: "
            + "; ".join(f.location + " " + f.rule_id for f in good.findings)
        )

    def test_walks_skip_fixture_directories(self):
        tests_dir = os.path.dirname(__file__)
        walked = list(iter_python_files([tests_dir]))
        assert walked, "the tests tree itself must be scanned"
        assert not any(os.sep + "fixtures" + os.sep in path for path in walked)
        explicit = list(iter_python_files([_fixture("clock_bad.py")]))
        assert len(explicit) == 1


# --------------------------------------------------------------------------
# Engine policy: exit status, rule selection, internal errors
# --------------------------------------------------------------------------
class TestEnginePolicy:
    def test_warning_fails_only_under_strict(self):
        result = run_lint(
            [_fixture("caches_bad.py")],
            rule_ids=["REPRO-UNBOUNDED-CACHE"],
            scoped=False,
        )
        assert result.findings
        assert all(f.severity == "warning" for f in result.findings)
        assert result.exit_status(strict=False) == 0
        assert result.exit_status(strict=True) == 1

    def test_error_fails_regardless(self):
        result = run_lint(
            [_fixture("clock_bad.py")], rule_ids=["REPRO-CLOCK"], scoped=False
        )
        assert result.exit_status(strict=False) == 1

    def test_unknown_rule_id_is_a_config_error(self):
        with pytest.raises(LintConfigError):
            select_rules(["NO-SUCH-RULE"])

    def test_missing_path_is_a_lint_error(self):
        with pytest.raises(LintError):
            list(iter_python_files(["definitely/not/here"]))

    def test_syntax_error_is_a_lint_error(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        with pytest.raises(LintError):
            run_lint([str(broken)], scoped=False)

    def test_scoping_confines_rules_to_their_layer(self):
        rule = select_rules(["REPRO-ASYNC-BLOCK"])[0]
        assert rule.applies_to("src/repro/service/service.py")
        assert not rule.applies_to("src/repro/engine/catalog.py")


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------
class TestLintCli:
    def test_clean_tree_exits_zero(self):
        out = io.StringIO()
        status = main(
            ["lint", _fixture("clock_good.py"), "--rule", "REPRO-CLOCK"], out=out
        )
        assert status == 0
        assert "clean" in out.getvalue()

    def test_findings_exit_one_with_locations(self):
        out = io.StringIO()
        status = main(
            ["lint", _fixture("clock_bad.py"), "--rule", "REPRO-CLOCK"], out=out
        )
        assert status == 1
        assert "clock_bad.py:7" in out.getvalue()

    def test_json_format_matches_renderer(self):
        # REPRO-CLOCK is unscoped, so the fixture fires through the scoped
        # CLI path (REPRO-SWALLOW would not — it patrols src/repro/ only).
        out = io.StringIO()
        status = main(
            [
                "lint",
                _fixture("clock_bad.py"),
                "--rule",
                "REPRO-CLOCK",
                "--format",
                "json",
            ],
            out=out,
        )
        payload = json.loads(out.getvalue())
        assert status == payload["exit_status"] == 1
        assert payload["summary"]["new"] == 2

    def test_unknown_rule_exits_two(self):
        out = io.StringIO()
        assert main(["lint", "--rule", "NO-SUCH-RULE", "src"], out=out) == 2
        assert "unknown rule" in out.getvalue()

    def test_bad_baseline_exits_two(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{")
        out = io.StringIO()
        assert (
            main(["lint", _fixture("clock_good.py"), "--baseline", str(bad)], out=out)
            == 2
        )

    def test_update_baseline_grandfathers_then_matches(self, tmp_path):
        # REPRO-CLOCK is unscoped, so the fixture fires through the scoped
        # CLI path too (the explicit file path bypasses the fixtures-skip).
        baseline = tmp_path / "baseline.json"
        fixture = _fixture("clock_bad.py")
        out = io.StringIO()
        assert (
            main(["lint", fixture, "--rule", "REPRO-CLOCK"], out=out) == 1
        ), "fixture must fire before grandfathering"
        out = io.StringIO()
        status = main(
            [
                "lint",
                fixture,
                "--rule",
                "REPRO-CLOCK",
                "--baseline",
                str(baseline),
                "--update-baseline",
            ],
            out=out,
        )
        assert status == 0 and baseline.exists()
        entries = load_baseline(str(baseline))
        assert len(entries) == 2
        assert all(entry.reason == PLACEHOLDER_REASON for entry in entries)
        assert json.loads(baseline.read_text())["version"] == 1
        out = io.StringIO()
        status = main(
            ["lint", fixture, "--rule", "REPRO-CLOCK", "--baseline", str(baseline)],
            out=out,
        )
        assert status == 0, out.getvalue()
        assert "2 baselined" in out.getvalue()

    def test_update_baseline_requires_baseline(self):
        out = io.StringIO()
        assert main(["lint", "--update-baseline", "src"], out=out) == 2


# --------------------------------------------------------------------------
# Self-hosting: the stack passes its own linter
# --------------------------------------------------------------------------
class TestSelfHosted:
    def test_src_and_tests_lint_clean_against_committed_baseline(self):
        result = run_lint(["src", "tests"], baseline_path="lint_baseline.json")
        problems = [f.location + " " + f.rule_id for f in result.findings]
        assert result.exit_status(strict=True) == 0, "; ".join(problems)
        assert result.files_scanned >= 100

    def test_committed_baseline_is_currently_empty(self):
        # The PR's target: no grandfathered findings.  If a future change
        # must baseline something, this pin makes the reviewer see it.
        assert load_baseline("lint_baseline.json") == []
