"""Property-based tests at the view level.

These properties tie the decision procedures back to concrete semantics: a
positive capacity-membership answer must come with a rewriting that returns
the goal's answers on random instances, equivalent views must answer every
view query identically after renaming, and redundancy removal must never
change the capacity.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relalg import evaluate
from repro.relalg.ast import Join, Projection, RelationRef
from repro.relational.generators import random_instantiation
from repro.relational.schema import DatabaseSchema, RelationName, RelationScheme
from repro.views import (
    QueryCapacity,
    View,
    answer_view_query,
    remove_redundancy,
    views_equivalent,
)
from repro.workloads import redundant_view

SCHEMA = DatabaseSchema([RelationName("R", "AB"), RelationName("S", "BC")])
NAMES = sorted(SCHEMA.relation_names, key=lambda n: n.name)

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_query(rng: random.Random, atoms: int):
    def build(count: int):
        if count == 1:
            expression = RelationRef(rng.choice(NAMES))
        else:
            split = rng.randint(1, count - 1)
            expression = Join((build(split), build(count - split)))
        attrs = expression.target_scheme.sorted_attributes()
        if len(attrs) > 1 and rng.random() < 0.5:
            keep = rng.randint(1, len(attrs) - 1)
            expression = Projection(expression, RelationScheme(rng.sample(attrs, keep)))
        return expression

    return build(atoms)


@st.composite
def views_and_goals(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    members = rng.randint(1, 3)
    definitions = []
    for index in range(members):
        query = _random_query(rng, rng.randint(1, 2))
        definitions.append((query, RelationName(f"V{index}", query.target_scheme)))
    view = View(definitions, SCHEMA)
    goal = _random_query(rng, rng.randint(1, 2))
    return view, goal, seed


@given(views_and_goals())
@_SETTINGS
def test_membership_witness_is_executable(case):
    """A positive membership answer yields a rewriting with identical answers."""

    view, goal, seed = case
    capacity = QueryCapacity(view)
    construction = capacity.explain(goal)
    if construction is None or construction.rewriting is None:
        return
    alpha = random_instantiation(SCHEMA, tuples_per_relation=10, seed=seed, domain_size=4)
    assert answer_view_query(view, construction.rewriting, alpha) == evaluate(goal, alpha)


@given(views_and_goals())
@_SETTINGS
def test_redundancy_removal_preserves_capacity(case):
    """The nonredundant equivalent has exactly the same capacity."""

    view, goal, _seed = case
    padded = redundant_view(view, extra_members=1, seed=3)
    slim = remove_redundancy(padded)
    assert views_equivalent(slim, padded)
    assert QueryCapacity(slim).contains(goal) == QueryCapacity(padded).contains(goal)


@given(views_and_goals())
@_SETTINGS
def test_membership_is_invariant_under_view_renaming(case):
    """Capacity is a property of the defining queries, not of the view names."""

    view, goal, _seed = case
    renamed = view.renamed({name.name: f"X{name.name}" for name in view.view_names})
    assert QueryCapacity(view).contains(goal) == QueryCapacity(renamed).contains(goal)


@given(views_and_goals())
@_SETTINGS
def test_generators_always_in_capacity(case):
    """Theorem 1.5.2: every defining query lies in the view's own capacity."""

    view, _goal, _seed = case
    capacity = QueryCapacity(view)
    for query in view.defining_queries:
        assert capacity.contains(query)
