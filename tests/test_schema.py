"""Unit tests for relation schemes, relation names and database schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.attributes import Attribute
from repro.relational.schema import DatabaseSchema, RelationName, RelationScheme, scheme


class TestRelationScheme:
    def test_from_string(self):
        assert scheme("AB") == RelationScheme([Attribute("A"), Attribute("B")])

    def test_nonempty_required(self):
        with pytest.raises(SchemaError):
            RelationScheme([])

    def test_set_semantics(self):
        assert scheme("AAB") == scheme("AB")
        assert len(scheme("AAB")) == 2

    def test_union_and_intersection(self):
        assert scheme("AB").union(scheme("BC")) == scheme("ABC")
        assert scheme("AB").intersection(scheme("BC")) == {Attribute("B")}
        assert (scheme("AB") | scheme("BC")) == scheme("ABC")

    def test_subset_relations(self):
        assert scheme("A").issubset(scheme("AB"))
        assert scheme("AB").issuperset(scheme("A"))
        assert scheme("A") <= scheme("AB")
        assert not scheme("AC") <= scheme("AB")

    def test_restrict(self):
        assert scheme("ABC").restrict("AC") == scheme("AC")
        with pytest.raises(SchemaError):
            scheme("AB").restrict("AD")

    def test_contains_attribute_or_name(self):
        assert Attribute("A") in scheme("AB")
        assert "A" in scheme("AB")
        assert "C" not in scheme("AB")

    def test_sorted_attributes(self):
        assert [a.name for a in scheme("CBA").sorted_attributes()] == ["A", "B", "C"]

    def test_str(self):
        assert str(scheme("BA")) == "AB"


class TestRelationName:
    def test_type_accessible(self):
        name = RelationName("R", "AB")
        assert name.type == scheme("AB")
        assert name.name == "R"

    def test_equality_by_name_and_type(self):
        assert RelationName("R", "AB") == RelationName("R", "AB")
        assert RelationName("R", "AB") != RelationName("R", "ABC")
        assert RelationName("R", "AB") != RelationName("S", "AB")

    def test_renamed_keeps_type(self):
        renamed = RelationName("R", "AB").renamed("R2")
        assert renamed.name == "R2"
        assert renamed.type == scheme("AB")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationName("", "AB")

    def test_hashable(self):
        assert len({RelationName("R", "AB"), RelationName("R", "AB")}) == 1


class TestDatabaseSchema:
    def test_universe_is_union_of_types(self):
        db = DatabaseSchema([RelationName("R", "AB"), RelationName("S", "BC")])
        assert db.universe == scheme("ABC")

    def test_lookup_by_text(self):
        db = DatabaseSchema([RelationName("R", "AB")])
        assert db["R"] == RelationName("R", "AB")
        assert db.get("missing") is None
        with pytest.raises(SchemaError):
            db["missing"]

    def test_nonempty_required(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([])

    def test_duplicate_textual_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationName("R", "AB"), RelationName("R", "BC")])

    def test_contains(self):
        db = DatabaseSchema([RelationName("R", "AB")])
        assert RelationName("R", "AB") in db
        assert "R" in db
        assert "S" not in db

    def test_iteration_is_name_ordered(self):
        db = DatabaseSchema([RelationName("S", "BC"), RelationName("R", "AB")])
        assert [name.name for name in db] == ["R", "S"]

    def test_covers(self):
        r, s = RelationName("R", "AB"), RelationName("S", "BC")
        db = DatabaseSchema([r, s])
        assert db.covers({r})
        assert not db.covers({RelationName("T", "CD")})

    def test_extend(self):
        db = DatabaseSchema([RelationName("R", "AB")])
        extended = db.extend([RelationName("S", "BC")])
        assert len(extended) == 2
        assert extended.universe == scheme("ABC")
