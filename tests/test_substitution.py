"""Tests for template assignments and template substitution (Section 2.2)."""

import pytest

from repro.exceptions import SubstitutionError
from repro.relalg.parser import parse_expression
from repro.relational.attributes import MarkedSymbol
from repro.relational.generators import random_instantiation
from repro.relational.schema import RelationName
from repro.templates.embedding import evaluate_template
from repro.templates.from_expression import template_from_expression
from repro.templates.homomorphism import templates_equivalent
from repro.templates.substitution import TemplateAssignment, apply_assignment, substitute
from repro.templates.template import atomic_template
from repro.templates.to_expression import is_expression_template
from repro.workloads.scenarios import example_2_2_2


def T(text, schema):
    return template_from_expression(parse_expression(text, schema))


@pytest.fixture
def view_vocabulary(rs_schema):
    """Two 'view' names over the R/S schema with their defining templates."""

    v1 = RelationName("V1", "AB")
    v2 = RelationName("V2", "BC")
    beta = TemplateAssignment(
        {v1: T("pi{A,B}(R & S)", rs_schema), v2: T("pi{B,C}(S)", rs_schema)}
    )
    return v1, v2, beta


class TestTemplateAssignment:
    def test_type_mismatch_rejected(self, rs_schema):
        v = RelationName("V", "AC")
        with pytest.raises(SubstitutionError):
            TemplateAssignment({v: T("pi{A,B}(R)", rs_schema)})

    def test_default_is_atomic_template(self, rs_schema):
        beta = TemplateAssignment({})
        name = rs_schema["R"]
        assert beta.template_for(name) == atomic_template(name)

    def test_explicit_assignment_returned(self, view_vocabulary, rs_schema):
        v1, _v2, beta = view_vocabulary
        assert beta(v1) == T("pi{A,B}(R & S)", rs_schema)

    def test_assigned_names(self, view_vocabulary):
        v1, v2, beta = view_vocabulary
        assert beta.assigned_names == {v1, v2}


class TestSubstitution:
    def test_blocks_cover_all_rows(self, view_vocabulary):
        v1, v2, beta = view_vocabulary
        outer = T("(V1 & V2)", _vocab_schema(v1, v2))
        result = substitute(outer, beta)
        union = set()
        for block in result.blocks.values():
            union.update(block)
        assert union == set(result.template.rows)

    def test_block_lookup_and_reverse_lookup(self, view_vocabulary):
        v1, v2, beta = view_vocabulary
        outer = T("(V1 & V2)", _vocab_schema(v1, v2))
        result = substitute(outer, beta)
        for source in outer.rows:
            block = result.block_rows(source)
            for row in block:
                assert source in result.blocks_containing(row)
                assert any(origin[0] == source for origin in result.origins_of(row))

    def test_unknown_rows_rejected_in_lookups(self, view_vocabulary, rs_schema):
        v1, v2, beta = view_vocabulary
        outer = T("(V1 & V2)", _vocab_schema(v1, v2))
        result = substitute(outer, beta)
        foreign = next(iter(T("pi{B}(R)", rs_schema).rows))
        with pytest.raises(SubstitutionError):
            result.block_rows(foreign)
        with pytest.raises(SubstitutionError):
            result.origins_of(foreign)

    def test_marked_symbols_are_block_local(self, view_vocabulary):
        v1, v2, beta = view_vocabulary
        outer = T("(V1 & V2)", _vocab_schema(v1, v2))
        result = substitute(outer, beta)
        blocks = list(result.blocks.values())
        marked_per_block = []
        for block in blocks:
            marked = set()
            for row in block:
                marked.update(s for s in row.symbols() if isinstance(s, MarkedSymbol))
            marked_per_block.append(marked)
        for i in range(len(marked_per_block)):
            for j in range(i + 1, len(marked_per_block)):
                assert not (marked_per_block[i] & marked_per_block[j])

    def test_substitution_target_scheme_matches_outer(self, view_vocabulary):
        v1, v2, beta = view_vocabulary
        outer = T("pi{A,C}(V1 & V2)", _vocab_schema(v1, v2))
        result = substitute(outer, beta)
        assert result.template.target_scheme == outer.target_scheme

    def test_theorem_2_2_3_composition(self, view_vocabulary, rs_schema):
        # [T -> beta](alpha) == T(beta -> alpha) on random instances.
        v1, v2, beta = view_vocabulary
        for outer_text in ("(V1 & V2)", "pi{A,C}(V1 & V2)", "pi{B}(V2)"):
            outer = T(outer_text, _vocab_schema(v1, v2))
            substituted = substitute(outer, beta).template
            for seed in range(3):
                alpha = random_instantiation(
                    rs_schema, tuples_per_relation=12, seed=seed, domain_size=5
                )
                left = evaluate_template(substituted, alpha)
                right = evaluate_template(outer, apply_assignment(beta, alpha))
                assert left == right

    def test_corollary_2_2_4_expression_templates_closed(self, view_vocabulary):
        # The substitution of expression templates by an expression template is
        # again an expression template.
        v1, v2, beta = view_vocabulary
        outer = T("pi{A,C}(V1 & V2)", _vocab_schema(v1, v2))
        substituted = substitute(outer, beta).template
        assert is_expression_template(substituted)

    def test_substitution_equivalent_to_expression_expansion(self, view_vocabulary, rs_schema):
        # Substituting the outer template corresponds to expanding the outer
        # expression (Lemma 1.4.1 + Algorithm 2.1.1 commute).
        from repro.relalg.expand import expand_expression

        v1, v2, beta = view_vocabulary
        vocab = _vocab_schema(v1, v2)
        outer_expr = parse_expression("pi{A,C}(V1 & V2)", vocab)
        outer_template = template_from_expression(outer_expr)
        substituted = substitute(outer_template, beta).template
        expanded = expand_expression(
            outer_expr,
            {
                v1: parse_expression("pi{A,B}(R & S)", rs_schema),
                v2: parse_expression("pi{B,C}(S)", rs_schema),
            },
        )
        assert templates_equivalent(substituted, template_from_expression(expanded))

    def test_identity_substitution(self, rs_schema):
        # Substituting the default (atomic) assignment leaves the mapping unchanged.
        outer = T("pi{A,C}(R & S)", rs_schema)
        result = substitute(outer, TemplateAssignment({}))
        assert templates_equivalent(result.template, outer)


class TestPaperFigure1:
    def test_figure_1_substitution_shape(self):
        example = example_2_2_2()
        result = substitute(example.outer, example.assignment)
        # Figure 1 shows six tagged tuples in T -> beta.
        assert len(result.template) == 6
        # tau1's block is a copy of S1 (two rows); tau2's and tau3's blocks copy S2.
        sizes = sorted(len(block) for block in result.blocks.values())
        assert sizes == [2, 2, 2]

    def test_figure_1_substitution_composes(self):
        example = example_2_2_2()
        result = substitute(example.outer, example.assignment)
        alpha = random_instantiation(example.schema, tuples_per_relation=10, seed=5, domain_size=4)
        left = evaluate_template(result.template, alpha)
        right = evaluate_template(example.outer, apply_assignment(example.assignment, alpha))
        assert left == right


def _vocab_schema(*names):
    from repro.relational.schema import DatabaseSchema

    return DatabaseSchema(list(names))
