"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

CATALOGUE = """
schema {
  q(A, B, C)
}

view Split {
  W1(A, B) := pi{A,B}(q)
  W2(B, C) := pi{B,C}(q)
}

view Joined {
  VJ(A, B, C) := pi{A,B}(q) & pi{B,C}(q)
}

view Weak {
  PA(A) := pi{A}(q)
}
"""


@pytest.fixture
def catalogue_file(tmp_path):
    path = tmp_path / "catalogue.txt"
    path.write_text(CATALOGUE)
    return str(path)


def run_cli(args):
    out = io.StringIO()
    status = main(args, out=out)
    return status, out.getvalue()


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["analyze", "file.txt"])
        assert args.command == "analyze"

    def test_missing_subcommand_is_usage_error(self):
        status, _ = run_cli([])
        assert status == 2


class TestAnalyze:
    def test_analyze_all_views(self, catalogue_file):
        status, output = run_cli(["analyze", catalogue_file])
        assert status == 0
        assert "view Split" in output and "view Joined" in output

    def test_analyze_single_view(self, catalogue_file):
        status, output = run_cli(["analyze", catalogue_file, "--view", "Split"])
        assert status == 0
        assert "view Split" in output
        assert "view Joined" not in output

    def test_missing_file_is_input_error(self):
        status, output = run_cli(["analyze", "/nonexistent/catalogue.txt"])
        assert status == 2
        assert "error" in output

    def test_unknown_view_is_input_error(self, catalogue_file):
        status, output = run_cli(["analyze", catalogue_file, "--view", "Nope"])
        assert status == 2
        assert "error" in output


class TestMember:
    def test_positive_membership(self, catalogue_file):
        status, output = run_cli(["member", catalogue_file, "Split", "pi{A}(q)"])
        assert status == 0
        assert "YES" in output
        assert "rewriting" in output

    def test_negative_membership(self, catalogue_file):
        status, output = run_cli(["member", catalogue_file, "Split", "q"])
        assert status == 1
        assert "NO" in output

    def test_bad_query_is_input_error(self, catalogue_file):
        status, output = run_cli(["member", catalogue_file, "Split", "pi{A}(unknown)"])
        assert status == 2
        assert "error" in output


class TestEquivalent:
    def test_equivalent_views(self, catalogue_file):
        status, output = run_cli(["equivalent", catalogue_file, "Split", "Joined"])
        assert status == 0
        assert "EQUIVALENT" in output

    def test_non_equivalent_views(self, catalogue_file):
        status, output = run_cli(["equivalent", catalogue_file, "Split", "Weak"])
        assert status == 1
        assert "NOT EQUIVALENT" in output


class TestSimplify:
    def test_simplify_emits_parseable_catalogue(self, catalogue_file):
        from repro.catalog import parse_catalog

        status, output = run_cli(["simplify", catalogue_file])
        assert status == 0
        normalised = parse_catalog(output)
        assert set(normalised.views) == {"Split", "Joined", "Weak"}
        # The joined view decomposes into two members in normal form.
        assert len(normalised.view("Joined")) == 2
