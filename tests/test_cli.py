"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main

CATALOGUE = """
schema {
  q(A, B, C)
}

view Split {
  W1(A, B) := pi{A,B}(q)
  W2(B, C) := pi{B,C}(q)
}

view Joined {
  VJ(A, B, C) := pi{A,B}(q) & pi{B,C}(q)
}

view Weak {
  PA(A) := pi{A}(q)
}
"""


@pytest.fixture
def catalogue_file(tmp_path):
    path = tmp_path / "catalogue.txt"
    path.write_text(CATALOGUE)
    return str(path)


def run_cli(args):
    out = io.StringIO()
    status = main(args, out=out)
    return status, out.getvalue()


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["analyze", "file.txt"])
        assert args.command == "analyze"

    def test_missing_subcommand_is_usage_error(self):
        status, _ = run_cli([])
        assert status == 2


class TestAnalyze:
    def test_analyze_all_views(self, catalogue_file):
        status, output = run_cli(["analyze", catalogue_file])
        assert status == 0
        assert "view Split" in output and "view Joined" in output

    def test_analyze_single_view(self, catalogue_file):
        status, output = run_cli(["analyze", catalogue_file, "--view", "Split"])
        assert status == 0
        assert "view Split" in output
        assert "view Joined" not in output

    def test_missing_file_is_input_error(self):
        status, output = run_cli(["analyze", "/nonexistent/catalogue.txt"])
        assert status == 2
        assert "error" in output

    def test_unknown_view_is_input_error(self, catalogue_file):
        status, output = run_cli(["analyze", catalogue_file, "--view", "Nope"])
        assert status == 2
        assert "error" in output


class TestMember:
    def test_positive_membership(self, catalogue_file):
        status, output = run_cli(["member", catalogue_file, "Split", "pi{A}(q)"])
        assert status == 0
        assert "YES" in output
        assert "rewriting" in output

    def test_negative_membership(self, catalogue_file):
        status, output = run_cli(["member", catalogue_file, "Split", "q"])
        assert status == 1
        assert "NO" in output

    def test_bad_query_is_input_error(self, catalogue_file):
        status, output = run_cli(["member", catalogue_file, "Split", "pi{A}(unknown)"])
        assert status == 2
        assert "error" in output


class TestEquivalent:
    def test_equivalent_views(self, catalogue_file):
        status, output = run_cli(["equivalent", catalogue_file, "Split", "Joined"])
        assert status == 0
        assert "EQUIVALENT" in output

    def test_non_equivalent_views(self, catalogue_file):
        status, output = run_cli(["equivalent", catalogue_file, "Split", "Weak"])
        assert status == 1
        assert "NOT EQUIVALENT" in output


class TestCatalogAnalyze:
    def test_human_readable_report(self, catalogue_file):
        status, output = run_cli(["catalog-analyze", catalogue_file])
        assert status == 0
        assert "dominance matrix" in output
        assert "nonredundant core" in output

    def test_json_report_matches_engine(self, catalogue_file):
        from repro.catalog import parse_catalog
        from repro.engine import CatalogAnalyzer

        status, output = run_cli(["catalog-analyze", catalogue_file, "--json"])
        assert status == 0
        rendered = json.loads(output)
        catalog = parse_catalog(CATALOGUE)
        expected = CatalogAnalyzer(catalog).analyze().to_dict()
        assert rendered == expected
        # The service answers the same questions with the same values.
        assert rendered["dominance"]["Joined"]["Split"] is True
        assert rendered["nonredundant_core"] == list(expected["nonredundant_core"])

    def test_json_report_round_trips_through_json(self, catalogue_file):
        status, output = run_cli(["catalog-analyze", catalogue_file, "--json"])
        assert status == 0
        rendered = json.loads(output)
        assert set(rendered["names"]) == {"Split", "Joined", "Weak"}
        assert json.loads(json.dumps(rendered)) == rendered


class TestTraffic:
    def test_traffic_run_reports_and_verifies(self):
        status, output = run_cli(
            [
                "traffic",
                "--requests",
                "20",
                "--edit-rate",
                "0.2",
                "--jobs",
                "2",
                "--seed",
                "3",
            ]
        )
        assert status == 0
        assert "traffic: 20 events" in output
        assert "0 mismatches" in output
        assert "decision reuse" in output

    def test_traffic_json_summary(self):
        status, output = run_cli(
            ["traffic", "--requests", "12", "--seed", "1", "--json"]
        )
        assert status == 0
        summary = json.loads(output)
        assert summary["events"] == 12
        assert summary["mismatches"] == 0
        assert summary["verified"] > 0
        metrics = summary["metrics"]
        assert metrics["served"] + metrics["refused"] > 0
        assert "reuse" in metrics and "cache" in metrics

    def test_traffic_with_deadlines_exercises_misses(self):
        status, output = run_cli(
            [
                "traffic",
                "--requests",
                "25",
                "--deadline-ms",
                "10000",
                "--tiny-deadline-fraction",
                "0.3",
                "--seed",
                "5",
                "--json",
            ]
        )
        assert status == 0
        summary = json.loads(output)
        # The tiny-deadline slice produces explicit refusals/misses, never
        # wrong verdicts — the run still verifies with zero mismatches.
        assert summary["metrics"]["deadline_miss_rate"] > 0
        assert summary["mismatches"] == 0

    @pytest.mark.parametrize("scheduler", ["edf", "fifo"])
    def test_traffic_overload_lane_verifies(self, scheduler):
        status, output = run_cli(
            [
                "traffic",
                "--overload",
                "--scheduler",
                scheduler,
                "--requests",
                "48",
                "--jobs",
                "2",
                "--seed",
                "2",
                "--json",
            ]
        )
        assert status == 0
        summary = json.loads(output)
        assert summary["overload"] is True
        assert summary["scheduler"] == scheduler
        assert summary["mismatches"] == 0
        metrics = summary["metrics"]
        assert metrics["scheduler"] == scheduler
        # FIFO never sheds; EDF may (timing), but the counters must exist
        # and agree with the replay verifier either way.
        if scheduler == "fifo":
            assert metrics["shed"] == 0
        assert summary["shed_verified_as_refusals"] >= metrics["shed"]
        assert "queue_wait_p95_s" in metrics
        assert (
            metrics["missed_in_queue"] + metrics["missed_computing"]
            == metrics["deadline_misses"]
        )

    def test_traffic_rejects_unknown_scheduler(self):
        status, _output = run_cli(["traffic", "--scheduler", "lifo"])
        assert status == 2  # argparse usage error

    def test_traffic_subscribers_verify_and_report(self):
        status, output = run_cli(
            [
                "traffic",
                "--subscribers",
                "3",
                "--requests",
                "30",
                "--edit-rate",
                "0.3",
                "--jobs",
                "2",
                "--seed",
                "3",
            ]
        )
        assert status == 0
        assert "subscriptions: 3 subscribers" in output
        assert "0 mismatches, 0 silent drops" in output

    def test_traffic_subscribers_json_summary(self):
        status, output = run_cli(
            [
                "traffic",
                "--subscribers",
                "2",
                "--requests",
                "25",
                "--edit-rate",
                "0.3",
                "--seed",
                "2",
                "--json",
            ]
        )
        assert status == 0
        summary = json.loads(output)
        sub = summary["subscriptions"]
        assert sub["subscribers"] == 2
        assert sub["deltas_published"] == summary["metrics"]["edits"]
        assert sub["fold_mismatches"] == 0
        assert sub["silent_drops"] == 0
        assert sub["versions_fold_verified"] == summary["metrics"]["edits"]
        assert "push_p95_s" in sub
        # The per-edit reuse satellite: one entry per applied edit, in
        # version order, each carrying its own incremental accounting.
        per_edit = summary["per_edit_reuse"]
        assert len(per_edit) == summary["metrics"]["edits"]
        assert [entry["version"] for entry in per_edit] == list(
            range(1, len(per_edit) + 1)
        )
        assert all(0 <= e["reused"] <= e["needed"] or e["needed"] == 0 for e in per_edit)
        assert sum(e["reused"] for e in per_edit) == summary["metrics"]["reuse"]["reused"]

    def test_traffic_without_subscribers_has_no_subscription_block(self):
        status, output = run_cli(
            ["traffic", "--requests", "10", "--seed", "1", "--json"]
        )
        assert status == 0
        summary = json.loads(output)
        assert "subscriptions" not in summary
        assert summary["metrics"]["subscriptions"]["subscribers"] == 0


class TestSimplify:
    def test_simplify_emits_parseable_catalogue(self, catalogue_file):
        from repro.catalog import parse_catalog

        status, output = run_cli(["simplify", catalogue_file])
        assert status == 0
        normalised = parse_catalog(output)
        assert set(normalised.views) == {"Split", "Joined", "Weak"}
        # The joined view decomposes into two members in normal form.
        assert len(normalised.view("Joined")) == 2
