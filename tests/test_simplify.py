"""Tests for simplified views — the normal form of Section 4."""

import pytest

from repro.relalg import parse_expression
from repro.relational import RelationName
from repro.views import (
    View,
    is_nonredundant_view,
    is_simple_member,
    is_simplified_query_set,
    is_simplified_view,
    projection_of_original,
    proper_projection_queries,
    simplified_views_match,
    simplify_query_set,
    simplify_view,
    views_equivalent,
)
from repro.workloads import section_4_1_example


class TestProperProjections:
    def test_all_proper_subsets_enumerated(self, q_schema):
        query = parse_expression("q", q_schema)
        projections = proper_projection_queries(query)
        assert len(projections) == 6
        assert all(p.target_scheme != query.target_scheme for p in projections)

    def test_single_attribute_query_has_no_proper_projections(self, q_schema):
        assert proper_projection_queries(parse_expression("pi{A}(q)", q_schema)) == []


class TestSimpleMembers:
    def test_example_3_1_5_join_not_simple(self, q_schema):
        s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        # S decomposes into its own proper projections, so it is not simple.
        assert not is_simple_member([s], s)

    def test_example_3_1_5_projections_are_simple(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        assert is_simple_member([s1, s2], s1)
        assert is_simple_member([s1, s2], s2)

    def test_base_relation_is_simple_alone(self, q_schema):
        q = parse_expression("q", q_schema)
        assert is_simple_member([q], q)

    def test_redundant_member_is_not_simple(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        assert not is_simple_member([s1, s2, s], s)

    def test_simplified_query_set_detection(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        assert is_simplified_query_set([s1, s2])
        assert not is_simplified_query_set([s])


class TestSimplifyQuerySet:
    def test_example_3_1_5_decomposition(self, q_schema):
        s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        simplified = simplify_query_set([s])
        assert len(simplified) == 2
        assert is_simplified_query_set(simplified)
        targets = sorted(str(e.target_scheme) for e in simplified)
        assert targets == ["AB", "BC"]

    def test_closure_preserved(self, q_schema):
        from repro.views import closure_contains

        s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        simplified = simplify_query_set([s])
        assert closure_contains(simplified, s)
        for member in simplified:
            assert closure_contains([s], member)

    def test_already_simplified_set_unchanged_in_size(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        s2 = parse_expression("pi{B,C}(q)", q_schema)
        assert len(simplify_query_set([s1, s2])) == 2

    def test_duplicates_collapsed(self, q_schema):
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        assert len(simplify_query_set([s1, s1])) == 1


class TestSimplifyView:
    def test_theorem_4_1_3_simplified_equivalent_exists(self, joined_view):
        simplified = simplify_view(joined_view)
        assert is_simplified_view(simplified)
        assert views_equivalent(simplified, joined_view)

    def test_theorem_4_1_1_simplified_views_are_nonredundant(self, joined_view):
        simplified = simplify_view(joined_view)
        assert is_nonredundant_view(simplified)

    def test_nonredundant_but_not_simplified(self, joined_view):
        # Example 3.1.5's view V is nonredundant yet not simplified: the
        # converse of Theorem 4.1.1 fails.
        assert is_nonredundant_view(joined_view)
        assert not is_simplified_view(joined_view)

    def test_theorem_4_2_2_uniqueness_up_to_renaming(self, joined_view, split_view):
        simplified = simplify_view(joined_view)
        # split_view is itself simplified and equivalent, so it must match the
        # computed normal form member by member.
        assert is_simplified_view(split_view)
        assert simplified_views_match(simplified, split_view)

    def test_theorem_4_2_3_simplified_is_largest_nonredundant(self, joined_view, split_view):
        simplified = simplify_view(joined_view)
        for nonredundant in (joined_view, split_view):
            assert len(nonredundant) <= len(simplified)

    def test_theorem_4_2_1_members_are_projections_of_originals(self, joined_view):
        simplified = simplify_view(joined_view)
        for definition in simplified.definitions:
            witness = projection_of_original(definition.query, joined_view.defining_queries)
            assert witness is not None

    def test_fresh_view_names_avoid_clashes(self, joined_view):
        simplified = simplify_view(joined_view, name_prefix="q")  # clashes with base name
        names = {name.name for name in simplified.view_names}
        assert "q" not in names

    def test_simplified_views_match_rejects_different_sizes(self, split_view, joined_view):
        assert not simplified_views_match(split_view, joined_view)

    def test_simplified_view_of_simplified_view_is_same(self, split_view):
        again = simplify_view(split_view)
        assert simplified_views_match(again, split_view)


class TestSection41Example:
    def test_view_simplifies_and_stays_equivalent(self):
        example = section_4_1_example()
        simplified = simplify_view(example.view)
        assert is_simplified_view(simplified)
        assert views_equivalent(simplified, example.view)

    def test_decomposition_produces_more_members(self):
        # The paper notes a complete decomposition into pi_BCD(S), pi_AC(S)
        # (recreating S) and pi_AC(T), pi_ABC-parts for T: the simplified view
        # has strictly more members than the original two.
        example = section_4_1_example()
        simplified = simplify_view(example.view)
        assert len(simplified) > len(example.view)

    def test_every_member_is_projection_of_s_or_t(self):
        example = section_4_1_example()
        simplified = simplify_view(example.view)
        for definition in simplified.definitions:
            assert projection_of_original(definition.query, [example.s, example.t]) is not None
