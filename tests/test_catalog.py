"""Tests for the textual catalogue format."""

import pytest

from repro.catalog import Catalog, parse_catalog, serialize_catalog
from repro.exceptions import CatalogError
from repro.relational import RelationScheme

DOCUMENT = """
# registrar catalogue
schema {
  Enrolled(S, C)
  Teaches(P, C)
}

view Advisers {
  StudentProf(S, P) := pi{S,P}(Enrolled & Teaches)
  Courses(C) := pi{C}(Enrolled)
}

view Minimal {
  OnlyCourses(C) := pi{C}(Teaches)
}
"""


class TestParse:
    def test_schema_parsed(self):
        catalog = parse_catalog(DOCUMENT)
        assert len(catalog.schema) == 2
        assert catalog.schema["Enrolled"].type == RelationScheme(["S", "C"])

    def test_views_parsed(self):
        catalog = parse_catalog(DOCUMENT)
        assert set(catalog.views) == {"Advisers", "Minimal"}
        advisers = catalog.view("Advisers")
        assert len(advisers) == 2
        assert advisers.definition_for("StudentProf").query.target_scheme == RelationScheme("SP")

    def test_comments_and_blank_lines_ignored(self):
        assert parse_catalog(DOCUMENT)  # the leading comment must not break parsing

    def test_unknown_view_lookup_raises(self):
        with pytest.raises(CatalogError):
            parse_catalog(DOCUMENT).view("missing")

    def test_missing_schema_rejected(self):
        with pytest.raises(CatalogError):
            parse_catalog("view V {\n  X(A) := pi{A}(R)\n}")

    def test_unterminated_block_rejected(self):
        with pytest.raises(CatalogError):
            parse_catalog("schema {\n  R(A, B)\n")

    def test_bad_relation_line_rejected(self):
        with pytest.raises(CatalogError):
            parse_catalog("schema {\n  R A B\n}")

    def test_bad_view_line_rejected(self):
        with pytest.raises(CatalogError):
            parse_catalog("schema {\n  R(A, B)\n}\nview V {\n  X(A) = pi{A}(R)\n}")

    def test_view_block_needs_name(self):
        with pytest.raises(CatalogError):
            parse_catalog("schema {\n  R(A, B)\n}\nview {\n  X(A) := pi{A}(R)\n}")

    def test_duplicate_view_names_rejected(self):
        text = (
            "schema {\n  R(A, B)\n}\n"
            "view V {\n  X(A) := pi{A}(R)\n}\n"
            "view V {\n  Y(B) := pi{B}(R)\n}"
        )
        with pytest.raises(CatalogError):
            parse_catalog(text)


class TestSerialise:
    def test_round_trip(self):
        catalog = parse_catalog(DOCUMENT)
        text = serialize_catalog(catalog)
        reparsed = parse_catalog(text)
        assert reparsed.schema == catalog.schema
        assert set(reparsed.views) == set(catalog.views)
        for name, view in catalog.views.items():
            assert reparsed.views[name].defining_queries == view.defining_queries

    def test_serialised_text_is_stable(self):
        catalog = parse_catalog(DOCUMENT)
        assert serialize_catalog(catalog) == serialize_catalog(parse_catalog(serialize_catalog(catalog)))
