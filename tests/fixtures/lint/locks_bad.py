"""Planted fault: shared state mutated outside the lock (REPRO-LOCK)."""

import threading


class MemoTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}
        self._hits = 0

    def put(self, key, value):
        self._table[key] = value

    def get(self, key):
        with self._lock:
            value = self._table.get(key)
        self._hits += 1
        return value
