"""Fixed twin of ``clock_bad.py``: one monotonic clock for every stamp."""

import time


def stamp_request(record):
    record["start"] = time.monotonic()
    record["wall"] = time.monotonic()
    return record
