"""Fixed twin of ``caches_bad.py``: bounded, observable LRU tables."""

from repro.perf import LRUCache

_REPORT_CACHE = LRUCache(256)


class Analyzer:
    def __init__(self):
        self._memo = LRUCache(1024)
