"""Fixed twin of ``locks_bad.py``: every mutation under ``self._lock``."""

import threading


class MemoTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}
        self._hits = 0

    def put(self, key, value):
        with self._lock:
            self._table[key] = value

    def get(self, key):
        with self._lock:
            value = self._table.get(key)
            self._hits += 1
        return value
