"""Planted fault: blocking calls on the event loop (REPRO-ASYNC-BLOCK)."""

import time


class Dispatcher:
    def __init__(self, journal, lock):
        self._journal = journal
        self._lock = lock

    async def commit(self, delta):
        self._lock.acquire()
        try:
            self._journal.append(delta)
        finally:
            self._lock.release()
        time.sleep(0.01)
