"""Planted fault: a broad handler drops the failure (REPRO-SWALLOW)."""


class Prefetcher:
    def __init__(self):
        self._errors = 0

    def warm(self, views, compute):
        for view in views:
            try:
                compute(view)
            except Exception:
                continue
