"""Fixed twin of ``swallow_bad.py``: the failure is counted, not dropped."""


class Prefetcher:
    def __init__(self):
        self._errors = 0

    def warm(self, views, compute):
        for view in views:
            try:
                compute(view)
            except Exception:
                self._errors += 1
                continue
