"""Planted fault: unguarded tracer hook on the hot path (REPRO-HOT-GUARD)."""


class Worker:
    def __init__(self, tracer):
        self._tracer = tracer

    def serve(self, request, start, end):
        self._tracer.record(request.trace_id, "compute", start, end)
        record = self._tracer.record
        return record
