"""Fixed twin of ``hotguard_bad.py``: one attribute check guards the hook."""


class Worker:
    def __init__(self, tracer):
        self._tracer = tracer

    def serve(self, request, start, end):
        if self._tracer.enabled:
            self._tracer.record(request.trace_id, "compute", start, end)
            record = self._tracer.record
            return record
        return None
