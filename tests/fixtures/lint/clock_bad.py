"""Planted fault: stamps taken off a second timeline (REPRO-CLOCK)."""

import time


def stamp_request(record):
    record["start"] = time.perf_counter()
    record["wall"] = time.time()
    return record
