"""Fixed twin of ``asyncblock_bad.py``: blocking work routed off the loop."""

import asyncio


class Dispatcher:
    def __init__(self, journal, executor):
        self._journal = journal
        self._executor = executor

    async def commit(self, delta):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._journal.append, delta)
        await asyncio.sleep(0.01)
