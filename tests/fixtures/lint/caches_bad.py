"""Planted fault: a raw dict pressed into cache duty (REPRO-UNBOUNDED-CACHE)."""

_REPORT_CACHE = {}


class Analyzer:
    def __init__(self):
        self._memo = {}
