"""Cross-module integration tests: full pipelines the paper's results describe."""

import pytest

from repro.core import ViewAnalyzer
from repro.relalg import evaluate, parse_expression
from repro.relational import DatabaseSchema, RelationName
from repro.relational.generators import random_instantiation
from repro.views import (
    QueryCapacity,
    View,
    answer_view_query,
    is_nonredundant_view,
    is_simplified_view,
    remove_redundancy,
    simplify_view,
    surrogate_query,
    views_equivalent,
)
from repro.workloads import SchemaSpec, random_schema, random_view, redundant_view


class TestRewritingPipeline:
    """Capacity membership -> construction -> executable view rewriting."""

    def test_rewriting_answers_match_direct_evaluation(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        goal = parse_expression("pi{A,C}(pi{A,B}(q) & pi{B,C}(q))", q_schema)
        construction = capacity.explain(goal)
        assert construction is not None and construction.rewriting is not None

        # Execute the rewriting as a view query: it must return exactly the
        # goal's answers on every instance (here: three random ones).
        for seed in range(3):
            alpha = random_instantiation(q_schema, tuples_per_relation=20, seed=seed, domain_size=5)
            direct = evaluate(goal, alpha)
            through_view = answer_view_query(split_view, construction.rewriting, alpha)
            assert direct == through_view

    def test_surrogate_of_rewriting_is_goal(self, split_view, q_schema):
        capacity = QueryCapacity(split_view)
        goal = parse_expression("pi{B}(q)", q_schema)
        construction = capacity.explain(goal)
        surrogate = surrogate_query(split_view, construction.rewriting)
        from repro.relalg import expressions_equivalent

        assert expressions_equivalent(surrogate, goal)


class TestNormalisationPipeline:
    """Redundancy removal followed by simplification, end to end."""

    def test_padded_view_normalises(self, q_schema):
        s = parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema)
        s1 = parse_expression("pi{A,B}(q)", q_schema)
        padded = View(
            [(s, RelationName("VJ", "ABC")), (s1, RelationName("V1", "AB"))], q_schema
        )
        slim = remove_redundancy(padded)
        assert is_nonredundant_view(slim)
        simplified = simplify_view(slim)
        assert is_simplified_view(simplified)
        assert views_equivalent(simplified, padded)

    def test_analyzer_pipeline_on_random_views(self):
        schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=21)
        base = random_view(schema, members=2, atoms_per_query=2, seed=22)
        padded = redundant_view(base, extra_members=1, seed=23)
        analyzer = ViewAnalyzer(padded)
        report = analyzer.analyze()
        assert report.view_size == len(padded)
        assert report.nonredundant_size <= report.view_size
        assert report.nonredundant_size <= report.size_bound
        slim = analyzer.nonredundant()
        assert views_equivalent(slim, padded)
        simplified = analyzer.simplified()
        assert views_equivalent(simplified, padded)
        assert is_simplified_view(simplified)


class TestSecurityStyleScenario:
    """The Section 3.1 DBA discussion: hide an attribute, check what leaks."""

    def test_salary_hiding_view(self):
        employees = RelationName("Employee", "NDS")  # Name, Department, Salary
        schema = DatabaseSchema([employees])
        public = parse_expression("pi{N,D}(Employee)", schema)
        view = View([(public, RelationName("PublicEmployee", "DN"))], schema)
        capacity = QueryCapacity(view)
        # Queries over name/department remain answerable...
        assert capacity.contains(parse_expression("pi{N}(Employee)", schema))
        assert capacity.contains(parse_expression("pi{D}(Employee)", schema))
        # ...but anything touching the salary column is outside the capacity.
        assert not capacity.contains(parse_expression("pi{N,S}(Employee)", schema))
        assert not capacity.contains(parse_expression("pi{S}(Employee)", schema))
        assert not capacity.contains(parse_expression("Employee", schema))

    def test_view_users_cannot_recover_hidden_join_attribute(self, rs_schema):
        # Exposing only pi_A(R) and pi_C(S) loses the join column B entirely.
        view = View(
            [
                (parse_expression("pi{A}(R)", rs_schema), RelationName("VA", "A")),
                (parse_expression("pi{C}(S)", rs_schema), RelationName("VC", "C")),
            ],
            rs_schema,
        )
        capacity = QueryCapacity(view)
        assert not capacity.contains(parse_expression("pi{A,C}(R & S)", rs_schema))
        # The uncorrelated cartesian combination, however, is answerable.
        assert capacity.contains(parse_expression("pi{A}(R) & pi{C}(S)", rs_schema))


class TestEquivalenceAtScale:
    def test_random_equivalent_pairs_decided_positively(self):
        for seed in range(3):
            schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=seed)
            base = random_view(schema, members=2, atoms_per_query=2, seed=seed + 50)
            padded = redundant_view(base, extra_members=1, seed=seed + 60)
            renamed = padded.renamed({n.name: f"X{n.name}" for n in padded.view_names})
            assert views_equivalent(base, renamed)

    def test_view_equivalence_is_transitive_on_example(self, split_view, joined_view):
        third = simplify_view(joined_view)
        assert views_equivalent(split_view, joined_view)
        assert views_equivalent(joined_view, third)
        assert views_equivalent(split_view, third)
