"""Tests for the expression-template recogniser/synthesiser (Proposition 2.4.6)."""

import pytest

from repro.exceptions import NotAnExpressionTemplateError
from repro.relalg.evaluate import expressions_equivalent
from repro.relalg.parser import parse_expression
from repro.relational.attributes import Attribute, Constant, DistinguishedSymbol
from repro.relational.schema import DatabaseSchema, RelationName
from repro.templates.from_expression import template_from_expression
from repro.templates.homomorphism import templates_equivalent
from repro.templates.tagged_tuple import TaggedTuple
from repro.templates.template import Template
from repro.templates.to_expression import expression_from_template, is_expression_template

ROUND_TRIP_EXPRESSIONS = [
    "R",
    "pi{A}(R)",
    "(R & S)",
    "pi{A,C}(R & S)",
    "pi{A,C}(pi{A,B}(R) & S)",
    "pi{B}(R & S)",
    "(pi{A}(R) & pi{C}(S))",
    "pi{C}(pi{B,C}(R & S) & S)",
    "(pi{A,B}(R) & pi{B,C}(S) & R)",
    "pi{A}(pi{A,B}(R & S) & R)",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_EXPRESSIONS)
    def test_expression_templates_are_recognised(self, rs_schema, text):
        expression = parse_expression(text, rs_schema)
        template = template_from_expression(expression)
        recovered = expression_from_template(template)
        assert expressions_equivalent(recovered, expression)

    @pytest.mark.parametrize("text", ROUND_TRIP_EXPRESSIONS)
    def test_is_expression_template_true(self, rs_schema, text):
        template = template_from_expression(parse_expression(text, rs_schema))
        assert is_expression_template(template)

    def test_branch_internal_projection_orphan_component(self, rs_schema, triangle_schema):
        # pi_D-style case: a join branch whose own projection removes every
        # distinguished symbol of one of its components.
        schema = DatabaseSchema(
            [RelationName("R", "AB"), RelationName("W", "D"), RelationName("V", "ABD")]
        )
        expression = parse_expression("(pi{D}(R & W) & V)", schema)
        template = template_from_expression(expression)
        recovered = expression_from_template(template)
        assert expressions_equivalent(recovered, expression)


class TestNonExpressionTemplates:
    def _path_template(self):
        """A three-row template that no project-join expression can realise.

        The rows form a "path" ``R(x, 0_B) - S(x, y) - W(0_A, y)``: the symbol
        ``x`` would have to be created by a projection removing attribute A
        above rows R and S only, yet row W still carries ``0_A`` (so W cannot
        lie below that projection); symmetrically for ``y`` and attribute B.
        The two projection nodes would both have to contain row S while
        excluding each other's endpoints, which is impossible in a tree — this
        is the natural-join analogue of a query that needs attribute renaming.
        """

        a, b = Attribute("A"), Attribute("B")
        r = RelationName("R", "AB")
        s = RelationName("S", "AB")
        w = RelationName("W", "AB")
        x = Constant(a, "x")
        y = Constant(b, "y")
        row_r = TaggedTuple({a: x, b: DistinguishedSymbol(b)}, r)
        row_s = TaggedTuple({a: x, b: y}, s)
        row_w = TaggedTuple({a: DistinguishedSymbol(a), b: y}, w)
        return Template([row_r, row_s, row_w])

    def test_path_sharing_is_rejected(self):
        template = self._path_template()
        assert not is_expression_template(template)
        with pytest.raises(NotAnExpressionTemplateError):
            expression_from_template(template)

    def test_rejection_message_mentions_project_join(self):
        with pytest.raises(NotAnExpressionTemplateError) as excinfo:
            expression_from_template(self._path_template())
        assert "project-join" in str(excinfo.value)

    def test_triangle_sharing_is_an_expression_template(self):
        # Pairwise sharing across *different* attributes is fine: it arises from
        # nested projections, and the recogniser must find that witness.
        a, b, c = Attribute("A"), Attribute("B"), Attribute("C")
        r = RelationName("R", "AB")
        s = RelationName("S", "BC")
        t = RelationName("T", "AC")
        x, y, z = Constant(a, "x"), Constant(b, "y"), Constant(c, "z")
        head = TaggedTuple({a: DistinguishedSymbol(a), b: DistinguishedSymbol(b)}, r)
        template = Template(
            [
                TaggedTuple({a: x, b: y}, r),
                TaggedTuple({b: y, c: z}, s),
                TaggedTuple({a: x, c: z}, t),
                head,
            ]
        )
        assert is_expression_template(template)


class TestSynthesisedWitness:
    def test_witness_uses_only_template_relation_names(self, rs_schema):
        template = template_from_expression(parse_expression("pi{A,C}(R & S)", rs_schema))
        witness = expression_from_template(template)
        assert witness.relation_names <= template.relation_names

    def test_witness_matches_target_scheme(self, rs_schema):
        template = template_from_expression(parse_expression("pi{B}(R & S)", rs_schema))
        witness = expression_from_template(template)
        assert witness.target_scheme == template.target_scheme

    def test_reduction_happens_before_synthesis(self, rs_schema):
        # A redundant template still synthesises a witness for the reduced core.
        template = template_from_expression(parse_expression("(R & R & S)", rs_schema))
        witness = expression_from_template(template)
        assert templates_equivalent(template_from_expression(witness), template)

    def test_recogniser_works_over_view_vocabularies(self, q_schema):
        # Templates over freshly minted (view) names are handled the same way.
        v1 = RelationName("V1", "AB")
        v2 = RelationName("V2", "BC")
        a, b, c = Attribute("A"), Attribute("B"), Attribute("C")
        row1 = TaggedTuple({a: DistinguishedSymbol(a), b: DistinguishedSymbol(b)}, v1)
        row2 = TaggedTuple({b: DistinguishedSymbol(b), c: DistinguishedSymbol(c)}, v2)
        template = Template([row1, row2])
        witness = expression_from_template(template)
        assert witness.relation_names == {v1, v2}
