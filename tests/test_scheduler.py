"""Admission scheduling: EDF ordering, expired-work shedding, FIFO parity.

The contract under test (see :mod:`repro.service.scheduler`):

* ``fifo`` pops in static ``(priority, submission order)`` — the PR-3
  baseline, bit for bit;
* ``edf`` pops by earliest effective deadline with priority as tiebreak;
  requests with no deadline sort after every deadlined one, and the
  shutdown sentinel after everything;
* ``edf`` sheds: a request whose deadline expired while queued is refused
  explicitly *before* dispatch — and a shed is always a verdict-free
  refusal, with any coalesced followers refused too, never left hanging;
* queue-wait time counts against the deadline: a request that burned most
  of its budget waiting gets the reduced/refuse tier at dispatch, not the
  base budget.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.engine import CatalogAnalyzer
from repro.relalg import parse_expression
from repro.relational import RelationName
from repro.service import (
    CatalogService,
    EdfScheduler,
    FifoScheduler,
    SCHEDULERS,
    ServiceError,
    ServiceRequest,
    make_scheduler,
    run_traffic,
)
from repro.service.deadline import TIER_BASE
from repro.service.replay import replay, request_from_event, verify_replay
from repro.service.scheduler import ScheduledEntry
from repro.views import View
from repro.workloads import (
    SchemaSpec,
    TrafficEvent,
    overload_mix,
    random_schema,
    view_catalog,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def small_catalog(q_schema):
    split = View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
    weak = View(
        [(parse_expression("pi{A}(q)", q_schema), RelationName("Y1", "A"))], q_schema
    )
    return {"Split": split, "Weak": weak}


def _drain(sched, count):
    async def main():
        return [await sched.get() for _ in range(count)]

    return run(main())


class TestSchedulerUnits:
    def test_fifo_pops_priority_then_submission_order(self):
        async def main():
            sched = make_scheduler("fifo", 16).start()
            sched.put_nowait(ScheduledEntry(10, 0, "first", deadline_abs=1.0))
            sched.put_nowait(ScheduledEntry(10, 1, "second", deadline_abs=0.5))
            sched.put_nowait(ScheduledEntry(5, 2, "urgent", deadline_abs=None))
            return [(await sched.get()).item for _ in range(3)]

        # Deadlines are invisible to FIFO: priority first, then seq.
        assert run(main()) == ["urgent", "first", "second"]

    def test_edf_pops_earliest_effective_deadline_first(self):
        async def main():
            sched = make_scheduler("edf", 16).start()
            sched.put_nowait(ScheduledEntry(10, 0, "loose", deadline_abs=9.0))
            sched.put_nowait(ScheduledEntry(10, 1, "unbounded", deadline_abs=None))
            sched.put_nowait(ScheduledEntry(10, 2, "tight", deadline_abs=1.0))
            sched.put_nowait(ScheduledEntry(5, 3, "tie_urgent", deadline_abs=1.0))
            return [(await sched.get()).item for _ in range(4)]

        # Deadline order; priority breaks the exact tie; unbounded last.
        assert run(main()) == ["tie_urgent", "tight", "loose", "unbounded"]

    def test_sentinel_sorts_after_everything_in_both(self):
        for name in SCHEDULERS:

            async def main(name=name):
                sched = make_scheduler(name, 16).start()
                sched.put_sentinel(0)
                sched.put_nowait(ScheduledEntry(10, 1, "work", deadline_abs=None))
                sched.put_nowait(ScheduledEntry(10, 2, "tight", deadline_abs=1.0))
                return [(await sched.get()).item for _ in range(3)]

            popped = run(main())
            assert popped[-1] is None, name
            assert "work" in popped[:2] and "tight" in popped[:2]

    def test_bound_refuses_but_sentinel_is_exempt(self):
        async def main():
            sched = make_scheduler("edf", 2).start()
            sched.put_nowait(ScheduledEntry(10, 0, "a"))
            sched.put_nowait(ScheduledEntry(10, 1, "b"))
            with pytest.raises(asyncio.QueueFull):
                sched.put_nowait(ScheduledEntry(10, 2, "c"))
            sched.put_sentinel(3)  # close() must never block on a full queue
            assert sched.qsize() == 3

        run(main())

    def test_shed_predicate(self):
        edf = EdfScheduler(4)
        fifo = FifoScheduler(4)
        expired = ScheduledEntry(10, 0, "x", deadline_abs=1.0)
        alive = ScheduledEntry(10, 1, "y", deadline_abs=3.0)
        unbounded = ScheduledEntry(10, 2, "z", deadline_abs=None)
        sentinel = ScheduledEntry(EdfScheduler.SENTINEL_PRIORITY, 3, None, 0.0)
        assert edf.sheds(expired, now=2.0)
        assert not edf.sheds(alive, now=2.0)
        assert not edf.sheds(unbounded, now=2.0)
        assert not edf.sheds(sentinel, now=2.0)
        # FIFO never sheds — the PR-3 baseline dispatches everything.
        assert not fifo.sheds(expired, now=2.0)

    def test_make_scheduler_validation(self):
        with pytest.raises(ValueError):
            make_scheduler("lifo", 4)
        with pytest.raises(ValueError):
            make_scheduler("edf", 0)
        assert make_scheduler("edf", 4).name == "edf"
        assert make_scheduler("fifo", 4).name == "fifo"

    def test_service_rejects_unknown_scheduler(self, small_catalog):
        with pytest.raises(ServiceError):
            CatalogService(small_catalog, scheduler="lifo")


#: Per-read delay that makes queueing dominate: long enough that a handful
#: of loose reads reliably outlast the tight deadline below, short enough
#: to keep the test fast.
_SLOW_READ_S = 0.08
_TIGHT_DEADLINE_S = 0.3
#: Distinct projections so the loose reads never coalesce with each other
#: (all run at the same priority — the schedulers differ only on deadlines).
_LOOSE_QUERIES = ("A,B", "B,C", "A", "B", "C", "A,C", "A,B,C")


class TestEdfVsFifo:
    """The seeded burst where FIFO misses the late tight request and EDF meets it."""

    def _burst(self, scheduler, small_catalog, q_schema, monkeypatch):
        original = CatalogService._answer

        def slow_answer(self, analyzer, request, tier, limits):
            if request.subject == "Split":  # the loose reads
                time.sleep(_SLOW_READ_S)
            return original(self, analyzer, request, tier, limits)

        monkeypatch.setattr(CatalogService, "_answer", slow_answer)

        async def main():
            async with CatalogService(
                small_catalog, jobs=1, queue_limit=64, scheduler=scheduler
            ) as service:
                loop = asyncio.get_running_loop()
                loose = [
                    loop.create_task(
                        service.membership(
                            "Split",
                            parse_expression(f"pi{{{attrs}}}(q)", q_schema),
                            deadline_s=30.0,
                        )
                    )
                    for attrs in _LOOSE_QUERIES
                ]
                await asyncio.sleep(0)
                tight = loop.create_task(
                    service.membership(
                        "Weak",
                        parse_expression("pi{A}(q)", q_schema),
                        deadline_s=_TIGHT_DEADLINE_S,
                    )
                )
                responses = await asyncio.gather(*loose, tight)
                return responses[-1], service.metrics()

        return run(main())

    def test_fifo_misses_the_late_tight_request(
        self, small_catalog, q_schema, monkeypatch
    ):
        tight, metrics = self._burst("fifo", small_catalog, q_schema, monkeypatch)
        # Seven 80 ms loose reads ahead of it exhaust the 300 ms deadline
        # long before FIFO reaches it: refused after the fact, never computed.
        assert tight.status == "refused"
        assert tight.deadline_missed
        assert tight.answer is None
        assert metrics.missed_in_queue >= 1
        assert metrics.shed == 0  # fifo never sheds

    def test_edf_meets_the_same_request(self, small_catalog, q_schema, monkeypatch):
        tight, metrics = self._burst("edf", small_catalog, q_schema, monkeypatch)
        # EDF pops the tight request past the loose backlog and answers it
        # exactly, well inside its deadline.
        assert tight.ok
        assert tight.answer is True
        assert not tight.deadline_missed
        assert metrics.deadline_misses == 0


class TestSheddingSoundness:
    def test_shed_with_coalesced_followers_refuses_all(
        self, small_catalog, q_schema, monkeypatch
    ):
        # Stall the dispatcher with an edit long enough for the leader's
        # deadline to expire in the queue; followers coalesce onto it while
        # it waits.  The shed must resolve every one of them.
        original = CatalogAnalyzer.with_view

        def slow_with_view(self, name, view):
            time.sleep(0.2)
            return original(self, name, view)

        monkeypatch.setattr(CatalogAnalyzer, "with_view", slow_with_view)
        extra = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )
        query = parse_expression("pi{A}(q)", q_schema)

        async def main():
            async with CatalogService(
                small_catalog, jobs=1, scheduler="edf"
            ) as service:
                loop = asyncio.get_running_loop()
                edit = loop.create_task(service.add_view("Extra", extra))
                await asyncio.sleep(0.05)  # the edit is now stalling dispatch
                reads = [
                    loop.create_task(
                        service.membership("Split", query, deadline_s=0.05)
                    )
                    for _ in range(4)
                ]
                responses = await asyncio.wait_for(asyncio.gather(*reads), timeout=5)
                await edit
                return responses, service.metrics()

        responses, metrics = run(main())
        # One leader was enqueued (and shed); three coalesced onto it.  All
        # four resolved as verdict-free refusals — nobody hangs.
        assert metrics.shed == 1
        assert metrics.coalesced == 3
        for response in responses:
            assert response.status == "refused"
            assert response.shed
            assert response.answer is None
            assert response.deadline_missed

    def test_shedding_never_produces_a_non_refusal(self):
        # Property over seeded overload mixes: whatever gets shed is a
        # verdict-free refusal, and every exact answer still verifies
        # bit-identical against a fresh serial analyzer.
        schema = random_schema(
            SchemaSpec(relations=3, arity=2, universe_size=4), seed=23
        )
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2, atoms_per_query=2, seed=9
        )
        total_shed = 0
        for seed in range(3):
            events = overload_mix(
                schema,
                catalog,
                requests=60,
                seed=seed,
                tight_fraction=0.3,
                doomed_fraction=0.3,
                doomed_deadline_s=1e-4,
            )
            lane = run_traffic(catalog, events, jobs=1, scheduler="edf")
            assert lane["verdict"]["mismatches"] == []
            for response in lane["responses"]:
                if response.shed:
                    total_shed += 1
                    assert response.status == "refused"
                    assert response.answer is None
                    assert response.deadline_missed
            shed_responses = sum(1 for r in lane["responses"] if r.shed)
            # Coalesced followers share a shed leader's response, so the
            # response count can exceed the work items actually shed.
            assert shed_responses == lane["verdict"]["shed"]
            assert 0 < lane["metrics"].shed <= shed_responses
        assert total_shed > 0  # the doomed slice really exercised the path

    def test_edits_never_shed_and_keep_submission_order(
        self, small_catalog, q_schema, monkeypatch
    ):
        # A deadlined edit must be neither shed nor reordered ahead of an
        # earlier edit: mutations order by their fixed per-edit window
        # (enqueued + full_deadline_s) — submission order among
        # themselves — and a deadline on an edit only feeds miss
        # accounting.
        original = CatalogAnalyzer.with_view

        def slow_with_view(self, name, view):
            time.sleep(0.1)
            return original(self, name, view)

        monkeypatch.setattr(CatalogAnalyzer, "with_view", slow_with_view)
        v1 = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )
        v2 = View(
            [(parse_expression("pi{C}(q)", q_schema), RelationName("Z2", "C"))],
            q_schema,
        )

        async def main():
            async with CatalogService(
                small_catalog, jobs=1, scheduler="edf"
            ) as service:
                loop = asyncio.get_running_loop()
                first = loop.create_task(service.add_view("X", v1))
                await asyncio.sleep(0)
                # Expires while the first edit is still applying.
                second = loop.create_task(
                    service.submit(
                        ServiceRequest(
                            kind="add_view", subject="X", view=v2, deadline_s=0.05
                        )
                    )
                )
                responses = await asyncio.gather(first, second)
                return responses, service.analyzer.view("X"), service.metrics()

        (first, second), final_view, metrics = run(main())
        assert first.ok and first.answer["version"] == 1
        assert second.ok and second.answer["version"] == 2  # applied second
        assert second.deadline_missed  # late, but never dropped
        assert not second.shed
        assert metrics.shed == 0
        assert final_view == v2  # submission order decides the final state

    def test_edit_stream_interleaves_with_deadlined_reads(self):
        # Regression: edits used to sort at +inf under EDF and starve
        # behind every deadlined read.  With their fixed ordering deadline
        # (enqueued + full_deadline_s) an edit stream submitted among
        # reads whose deadlines open the same window runs in submission
        # order, so later reads are served at advanced catalog versions —
        # not all at version 0 with the edits deferred to the drain.
        from repro.workloads import traffic_mix

        schema = random_schema(
            SchemaSpec(relations=3, arity=2, universe_size=4), seed=23
        )
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2, atoms_per_query=2, seed=9
        )
        events = traffic_mix(
            schema, catalog, requests=120, edit_rate=0.15, seed=7, deadline_s=0.5
        )
        lane = run_traffic(catalog, events, jobs=2, scheduler="edf")
        assert lane["verdict"]["mismatches"] == []
        assert lane["metrics"].edits == sum(
            1 for e in events if e.kind in ("add_view", "drop_view")
        )
        read_versions = {
            r.version for r in lane["responses"] if r.status == "ok" and r.kind != "add_view" and r.kind != "drop_view"
        }
        assert max(read_versions) > 0  # reads saw post-edit catalog states

    def test_verify_replay_flags_shed_with_a_verdict(self, small_catalog):
        # The replay harness itself must reject a shed that claims success.
        from repro.service import ServiceResponse

        events = [TrafficEvent(kind="nonredundant_core", deadline_s=0.001)]
        history = {0: dict(small_catalog)}
        bogus = ServiceResponse(
            kind="nonredundant_core", status="ok", answer=("Split",), shed=True
        )
        verdict = verify_replay(history, events, [bogus])
        assert verdict["shed"] == 1
        assert any("shed" in m.get("error", "") for m in verdict["mismatches"])


class TestDeadlineAccounting:
    def test_queue_wait_counts_against_the_deadline(
        self, small_catalog, q_schema, monkeypatch
    ):
        # A request that burned most of its deadline queued behind a stalled
        # dispatcher must be served from the *remaining* budget — the
        # reduced/refuse tier — never the base budget its full deadline
        # would have bought at submission.
        original = CatalogAnalyzer.with_view

        def slow_with_view(self, name, view):
            time.sleep(0.3)
            return original(self, name, view)

        monkeypatch.setattr(CatalogAnalyzer, "with_view", slow_with_view)
        extra = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )
        query = parse_expression("pi{A}(q)", q_schema)

        async def main():
            async with CatalogService(small_catalog, jobs=1) as service:
                control = await service.membership("Split", query, deadline_s=0.6)
                loop = asyncio.get_running_loop()
                edit = loop.create_task(service.add_view("Extra", extra))
                await asyncio.sleep(0.05)
                stalled = await service.membership("Split", query, deadline_s=0.6)
                await edit
                return control, stalled

        control, stalled = run(main())
        # Unstalled, 600 ms of remaining deadline clears full_deadline_s
        # (0.5 s): the base tier, an exact answer.
        assert control.ok and control.tier == TIER_BASE
        # Stalled, ~250 ms of queue wait has been charged against the same
        # deadline: the tier must have degraded — a reduced-budget answer or
        # an outright refusal, never an exact base-tier answer computed from
        # the full deadline the request was submitted with.
        assert stalled.waited_s > 0.1
        assert stalled.status == "refused" or stalled.tier != TIER_BASE

    def test_expired_while_queued_is_not_served_base(
        self, small_catalog, q_schema, monkeypatch
    ):
        # Sharper variant: the deadline fully expires during the stall; both
        # schedulers must refuse (edf sheds, fifo refuses at dispatch).
        original = CatalogAnalyzer.with_view

        def slow_with_view(self, name, view):
            time.sleep(0.15)
            return original(self, name, view)

        monkeypatch.setattr(CatalogAnalyzer, "with_view", slow_with_view)
        extra = View(
            [(parse_expression("pi{B}(q)", q_schema), RelationName("Z1", "B"))],
            q_schema,
        )
        query = parse_expression("pi{A}(q)", q_schema)
        for scheduler in ("edf", "fifo"):

            async def main(scheduler=scheduler):
                async with CatalogService(
                    small_catalog, jobs=1, scheduler=scheduler
                ) as service:
                    loop = asyncio.get_running_loop()
                    edit = loop.create_task(service.add_view("Extra", extra))
                    await asyncio.sleep(0.05)
                    read = await service.membership("Split", query, deadline_s=0.05)
                    await edit
                    return read, service.metrics()

            read, metrics = run(main())
            assert read.status == "refused", scheduler
            assert read.deadline_missed, scheduler
            assert metrics.missed_in_queue == 1, scheduler
            assert metrics.missed_computing == 0, scheduler
            assert read.shed == (scheduler == "edf")


class TestSchedulerLanesAgree:
    def test_served_answers_identical_across_schedulers(self, small_catalog):
        # Scheduling changes *when* work runs, never *what* it answers: on
        # an edit-free mix, every question served by both lanes must agree
        # (and both verify against the fresh oracle).
        schema = random_schema(
            SchemaSpec(relations=3, arity=2, universe_size=4), seed=23
        )
        catalog = view_catalog(
            schema, classes=2, copies_per_class=2, members=2, atoms_per_query=2, seed=9
        )
        events = overload_mix(schema, catalog, requests=40, seed=5)
        by_scheduler = {}
        for scheduler in ("fifo", "edf"):
            lane = run_traffic(catalog, events, jobs=2, scheduler=scheduler)
            assert lane["verdict"]["mismatches"] == []
            by_scheduler[scheduler] = lane["responses"]
        for event, fifo_r, edf_r in zip(
            events, by_scheduler["fifo"], by_scheduler["edf"]
        ):
            if fifo_r.status == "ok" and edf_r.status == "ok":
                assert fifo_r.answer == edf_r.answer, request_from_event(event)


class TestReplayHelpers:
    def test_replay_returns_in_event_order(self, small_catalog, q_schema):
        events = [
            TrafficEvent(
                kind="membership",
                subject="Split",
                query=parse_expression("pi{A}(q)", q_schema),
            ),
            TrafficEvent(kind="nonredundant_core"),
        ]

        async def main():
            async with CatalogService(small_catalog, scheduler="edf") as service:
                return await replay(service, events)

        responses = run(main())
        assert [r.kind for r in responses] == ["membership", "nonredundant_core"]
