"""Setup shim for environments that need a legacy (non-PEP 660) editable install."""

from setuptools import setup

setup()
