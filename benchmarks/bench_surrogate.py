"""Experiment E1 — surrogate queries (Theorem 1.4.2, Lemma 1.4.1).

Series reported: time to (a) build the surrogate of a view query and (b)
answer the view query on the induced instantiation, swept over instance size
and over uniform vs skewed data.  The correctness of the identity
``E-hat(alpha) = E(alpha_V)`` is asserted inside every benchmarked call, so
the timing doubles as a verification run.
"""

from __future__ import annotations

import pytest

from repro.relalg import evaluate, parse_expression
from repro.relational import DatabaseSchema
from repro.relational.generators import random_instantiation, skewed_instantiation
from repro.views import answer_view_query, surrogate_query

VIEW_QUERIES = {
    "single": "W1",
    "join": "W1 & W2",
    "project_join": "pi{A,C}(W1 & W2)",
}


@pytest.fixture(scope="module")
def view_vocab(split_view):
    return DatabaseSchema(split_view.view_names)


@pytest.mark.parametrize("query_name", sorted(VIEW_QUERIES))
def test_surrogate_construction(benchmark, split_view, view_vocab, query_name):
    """Cost of expanding a view query into its surrogate (pure rewriting)."""

    view_query = parse_expression(VIEW_QUERIES[query_name], view_vocab)

    def run():
        return surrogate_query(split_view, view_query)

    surrogate = benchmark(run)
    assert surrogate.relation_names <= split_view.underlying_schema.relation_names


@pytest.mark.parametrize("tuples", [20, 80, 320])
@pytest.mark.parametrize("distribution", ["uniform", "skewed"])
def test_surrogate_answers_match(benchmark, split_view, view_vocab, q_schema, tuples, distribution):
    """Answering through the view equals answering the surrogate directly."""

    view_query = parse_expression(VIEW_QUERIES["project_join"], view_vocab)
    surrogate = surrogate_query(split_view, view_query)
    if distribution == "uniform":
        alpha = random_instantiation(q_schema, tuples_per_relation=tuples, seed=1, domain_size=16)
    else:
        alpha = skewed_instantiation(q_schema, tuples_per_relation=tuples, seed=1)

    def run():
        through_view = answer_view_query(split_view, view_query, alpha)
        direct = evaluate(surrogate, alpha)
        assert through_view == direct
        return len(direct)

    benchmark(run)
