"""Experiment E5 — deciding view equivalence (Theorem 2.4.12).

Series reported: decision time for equivalent pairs (a base view vs a padded
and renamed copy) and for non-equivalent pairs (one member weakened), swept
over the number of defining queries.  Positive instances must do the work of
both dominance directions; negative instances typically exit after the first
missing construction.
"""

from __future__ import annotations

import pytest

from repro.views import views_equivalent
from repro.workloads import (
    SchemaSpec,
    equivalent_view_pair,
    perturbed_view,
    random_schema,
    random_view,
)

SCHEMA = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=17)
MEMBER_COUNTS = [1, 2]


@pytest.mark.parametrize("members", MEMBER_COUNTS)
def test_equivalent_pair(benchmark, members):
    first, second = equivalent_view_pair(SCHEMA, members=members, atoms_per_query=2, seed=members)

    def run():
        return views_equivalent(first, second)

    assert benchmark(run) is True


@pytest.mark.parametrize("members", MEMBER_COUNTS)
def test_non_equivalent_pair(benchmark, members):
    base = random_view(SCHEMA, members=members, atoms_per_query=2, seed=members + 40)
    weakened = perturbed_view(base, seed=members + 41)
    expected = False if weakened != base else True

    def run():
        return views_equivalent(base, weakened)

    assert benchmark(run) is expected


def test_example_3_1_5_equivalence(benchmark, split_view, q_schema):
    """The paper's own example pair, as a fixed reference point."""

    from repro.relalg import parse_expression
    from repro.relational import RelationName
    from repro.views import View

    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("lam", "ABC"),
            )
        ],
        q_schema,
    )

    def run():
        return views_equivalent(split_view, joined)

    assert benchmark(run) is True
