"""Experiment E8 — the simplified normal form (Theorems 4.1.3, 4.2.2, 4.2.3).

Series reported: time to compute the simplified view for defining queries of
growing width (target-scheme size drives the number of proper projections
considered), plus a fixed-point check (simplifying a simplified view is
cheap and returns the same normal form).
"""

from __future__ import annotations

import pytest

from repro.relalg import parse_expression
from repro.relational import DatabaseSchema, RelationName
from repro.views import (
    View,
    is_simplified_view,
    simplified_views_match,
    simplify_view,
    views_equivalent,
)
from repro.workloads import section_4_1_example

WIDE_SCHEMA = DatabaseSchema(
    [RelationName("R", "AB"), RelationName("S", "BC"), RelationName("T", "CD")]
)

CASES = {
    "width2": "pi{A,B}(R)",
    "width3": "pi{A,B,C}(R & S)",
    "width4": "R & S & T",
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_simplify_single_member_view(benchmark, case):
    query = parse_expression(CASES[case], WIDE_SCHEMA)
    view = View([(query, RelationName("V", query.target_scheme))], WIDE_SCHEMA)

    def run():
        return simplify_view(view)

    simplified = benchmark(run)
    assert is_simplified_view(simplified)
    assert views_equivalent(simplified, view)


def test_simplify_section_4_1_view(benchmark):
    """The ABCD decomposition example that opens Section 4.1."""

    example = section_4_1_example()

    def run():
        return simplify_view(example.view)

    simplified = benchmark(run)
    assert views_equivalent(simplified, example.view)


def test_simplify_is_a_fixed_point(benchmark, split_view):
    """Re-simplifying the normal form returns the same view (Theorem 4.2.2)."""

    def run():
        return simplify_view(split_view)

    again = benchmark(run)
    assert simplified_views_match(again, split_view)
