"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one experiment of EXPERIMENTS.md.  The
pytest-benchmark table is the reported series: parameter values appear in the
test ids, so a single ``pytest benchmarks/ --benchmark-only`` run prints every
row of every experiment.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.relational import DatabaseSchema, RelationName  # noqa: E402
from repro.relalg import parse_expression  # noqa: E402
from repro.views import View  # noqa: E402


@pytest.fixture(scope="session")
def q_schema() -> DatabaseSchema:
    """The single ternary relation q(A,B,C) used by the paper's running example."""

    return DatabaseSchema([RelationName("q", "ABC")])


@pytest.fixture(scope="session")
def rs_schema() -> DatabaseSchema:
    """The two-relation schema R(A,B), S(B,C)."""

    return DatabaseSchema([RelationName("R", "AB"), RelationName("S", "BC")])


@pytest.fixture(scope="session")
def split_view(q_schema) -> View:
    """The simplified view W of Example 3.1.5."""

    return View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
