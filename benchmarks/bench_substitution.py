"""Experiment E2 — template substitution composes mappings (Theorem 2.2.3).

Series reported: time to compute ``T -> beta`` and to verify
``[T -> beta](alpha) = T(beta -> alpha)`` on instances of growing size, for
the paper's Figure 1 substitution and for larger synthetic assignments.
"""

from __future__ import annotations

import pytest

from repro.relational.generators import random_instantiation
from repro.templates import apply_assignment, evaluate_template, substitute
from repro.workloads import example_2_2_2


@pytest.fixture(scope="module")
def figure_1():
    return example_2_2_2()


def test_substitution_construction(benchmark, figure_1):
    """Cost of building the Figure 1 substitution ``T -> beta``."""

    result = benchmark(lambda: substitute(figure_1.outer, figure_1.assignment))
    assert len(result.template) == 6


@pytest.mark.parametrize("tuples", [10, 40, 160])
def test_theorem_2_2_3_verification(benchmark, figure_1, tuples):
    """Cost of checking the composition identity on instances of growing size."""

    substituted = substitute(figure_1.outer, figure_1.assignment).template
    alpha = random_instantiation(
        figure_1.schema, tuples_per_relation=tuples, seed=3, domain_size=12
    )

    def run():
        left = evaluate_template(substituted, alpha)
        right = evaluate_template(figure_1.outer, apply_assignment(figure_1.assignment, alpha))
        assert left == right
        return len(left)

    benchmark(run)
