"""Shim: benchmark history lives in :mod:`repro.perf.history`.

``benchmarks/`` is a scripts directory, not a package — the real
implementation sits in ``src/repro/perf/history.py`` so ``repro
bench-history`` can import it without path games.  ``run_benchmarks.py``
(which puts ``src/`` on ``sys.path`` itself) imports through this module
so the history logic is discoverable next to the harness it serves.
"""

from repro.perf.history import (  # noqa: F401
    DEFAULT_BAND,
    HISTORY_FILENAME,
    append_history,
    flag_regressions,
    git_revision,
    history_entry,
    load_history,
    tracked_metrics,
)
