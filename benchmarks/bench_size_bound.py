"""Experiment E7 — the size bound for nonredundant equivalents (Lemma 3.1.6, Theorem 3.1.7).

Series reported: for views of growing defining-query size, the measured size
of the computed nonredundant equivalent, the size of the simplified view (the
largest nonredundant equivalent by Theorem 4.2.3) and the Lemma 3.1.6 bound.
The benchmark asserts ``nonredundant <= simplified <= bound`` on every
instance, which is the shape the theorems predict.
"""

from __future__ import annotations

import pytest

from repro.views import (
    is_nonredundant_view,
    nonredundant_size_bound,
    remove_redundancy,
    simplify_view,
)
from repro.workloads import SchemaSpec, random_schema, random_view

SCHEMA = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=9)
ATOMS_PER_QUERY = [1, 2]


@pytest.mark.parametrize("atoms", ATOMS_PER_QUERY)
def test_bound_versus_measured_sizes(benchmark, atoms):
    view = random_view(SCHEMA, members=2, atoms_per_query=atoms, seed=atoms + 70)

    def run():
        slim = remove_redundancy(view)
        simplified = simplify_view(view)
        return len(slim), len(simplified), nonredundant_size_bound(view)

    slim_size, simplified_size, bound = benchmark(run)
    assert slim_size <= bound
    assert simplified_size <= bound
    assert slim_size <= simplified_size


def test_bound_on_paper_example(benchmark, split_view, q_schema):
    """Example 3.1.5: bound 2, equivalent nonredundant views of sizes 1 and 2."""

    from repro.relalg import parse_expression
    from repro.relational import RelationName
    from repro.views import View

    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("lam", "ABC"),
            )
        ],
        q_schema,
    )

    def run():
        return nonredundant_size_bound(joined), len(remove_redundancy(joined)), len(split_view)

    bound, joined_size, split_size = benchmark(run)
    assert bound >= split_size >= joined_size
    assert is_nonredundant_view(split_view)
