"""Lightweight timing harness: the machine-readable perf trajectory.

Runs the scenarios of the ``bench_membership``, ``bench_equivalence`` and
``bench_redundancy`` suites — plus the PR-2 ``large_membership`` (cold-path
scale-up: deep joins, scheme prechecks) and ``catalog`` (batched
:class:`repro.engine.CatalogAnalyzer`: signature dedup, parallel fan-out)
suites, and the PR-3 ``service`` suite (simulated request/edit traffic
against the long-lived :class:`repro.service.CatalogService`: throughput,
latency percentiles, deadline-miss rate, incremental decision-reuse ratio,
every exact answer verified bit-identical against a fresh serial analyzer
per catalog version; PR 4 adds the overload lanes comparing the ``fifo``
and ``edf`` admission schedulers on one seeded mixed-deadline burst mix,
recording the miss-rate split and shed rate of each; PR 5 adds the
subscription lanes measuring delta-push latency and the server work saved
by pushing per-edit deltas instead of answering per-client core polls,
with every delta fold verified bit-identical against fresh serial
analyzers; PR 6 adds the journal/recovery lanes measuring the fsync-policy
cost of the durable delta journal and snapshot+fold crash recovery against
cold re-analysis, the recovered analyzer verified bit-identical; PR 8 adds
the tracing lanes replaying the burst mix with the span tracer off and on,
gating ``trace_overhead_ratio`` at 1.05x and recording the per-stage
latency breakdown; PR 10 adds the sampling lanes replaying it once more
with the tail sampler deciding which boring traces to keep, gating
``sampler_overhead_ratio`` at the same 1.05x and asserting 100% retention
of shed/missed/refused traces with an exactly-balanced ledger) — against
both engines:

* **seed** — the preserved pre-optimisation implementations
  (:mod:`repro.baselines.seed_engine`), and
* **optimised** — the indexed + memoized engine, measured twice: *cold*
  (memo tables cleared before every run) and *warm* (tables primed, the
  steady state of multi-scenario traffic) —

cross-checks that both engines agree on every answer (for the catalog
suite: that parallel matrices are bit-identical to serial), and writes
``BENCH_perf.json`` at the repository root: median wall-times, speedups
over the seed, parallel-vs-serial speedups with the machine's CPU count,
and memo-table hit rates.  Every PR from this one onward appends to that
trajectory; CI runs ``--smoke`` to keep the file fresh (the smoke set
includes one large-instance cold scenario and one parallel lane).

Each run also appends one direction-tagged line of tracked metrics to
``BENCH_history.jsonl`` (see :mod:`repro.perf.history`; disable with
``--history ''``) so ``repro bench-history`` can flag regressions against
the previous comparable run.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--smoke]
        [--repeats N] [--output PATH] [--history PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from typing import Callable, Dict, List

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines.seed_engine import (  # noqa: E402
    seed_closure_contains,
    seed_dominates,
    seed_remove_redundancy_queries,
    seed_views_equivalent,
)
from repro.engine import CatalogAnalyzer, process_chunksize  # noqa: E402
from repro.obs.sampling import TailSampler  # noqa: E402
from repro.obs.tracing import Tracer, trace_breakdown  # noqa: E402
from repro.perf import cache_stats, clear_caches  # noqa: E402
from repro.service import (  # noqa: E402
    OVERLOAD_POLICY,
    DeltaJournal,
    recover_service,
    run_traffic,
)
from repro.relalg import parse_expression  # noqa: E402
from repro.relational import DatabaseSchema, RelationName  # noqa: E402
from repro.views import (  # noqa: E402
    View,
    closure_contains,
    named_generators,
    remove_redundancy,
    views_equivalent,
)
from repro.views.redundancy import nonredundant_query_set  # noqa: E402
from repro.workloads import (  # noqa: E402
    SchemaSpec,
    TrafficEvent,
    cold_membership_instance,
    equivalent_view_pair,
    overload_mix,
    perturbed_view,
    random_schema,
    random_view,
    redundant_view,
    subscriber_mix,
    traffic_mix,
    view_catalog,
)

DEFAULT_REPEATS = 7
SMOKE_REPEATS = 3

#: Memo tables whose hit rates the trajectory records.
TRACKED_TABLES = (
    "hom.has_homomorphism",
    "reduction.reduce_template",
    "closure.find_construction",
)


def _median_seconds(fn: Callable[[], object], repeats: int, *, clear: bool) -> float:
    times: List[float] = []
    for _ in range(repeats):
        if clear:
            clear_caches()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _time_scenario(
    name: str,
    seed_fn: Callable[[], object],
    optimised_fn: Callable[[], object],
    repeats: int,
) -> Dict[str, object]:
    seed_answer = seed_fn()
    clear_caches()
    optimised_answer = optimised_fn()
    agree = seed_answer == optimised_answer

    seed_s = _median_seconds(seed_fn, repeats, clear=False)
    cold_s = _median_seconds(optimised_fn, repeats, clear=True)
    clear_caches()
    optimised_fn()  # prime the memo tables
    warm_s = _median_seconds(optimised_fn, repeats, clear=False)

    floor = 1e-9
    return {
        "name": name,
        "agree": agree,
        "seed_s": seed_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_cold": seed_s / max(cold_s, floor),
        "speedup_warm": seed_s / max(warm_s, floor),
    }


def _suite_summary(scenarios: List[Dict[str, object]]) -> Dict[str, object]:
    return {
        "median_speedup_cold": statistics.median(
            s["speedup_cold"] for s in scenarios
        ),
        "median_speedup_warm": statistics.median(
            s["speedup_warm"] for s in scenarios
        ),
        "all_agree": all(s["agree"] for s in scenarios),
    }


def _tracked_cache_stats() -> Dict[str, Dict[str, object]]:
    snapshot = cache_stats()
    return {
        name: {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "size": stats.size,
        }
        for name, stats in snapshot.items()
        if name in TRACKED_TABLES
    }


# ------------------------------------------------------------------- suites
def bench_membership(repeats: int, smoke: bool = False) -> Dict[str, object]:
    """Experiment E4 — capacity membership (Theorem 2.4.11)."""

    q_schema = DatabaseSchema([RelationName("q", "ABC")])
    generators = named_generators(
        [
            parse_expression("pi{A,B}(q)", q_schema),
            parse_expression("pi{B,C}(q)", q_schema),
        ]
    )
    goals = {
        "k1_projection": "pi{A}(q)",
        "k2_join": "pi{A,B}(q) & pi{B,C}(q)",
        "k1_negative": "pi{A,C}(q)",
        "k2_negative": "q",
        "k3_negative": "pi{A,B}(q) & pi{B,C}(q) & pi{A,C}(q)",
        "k3_positive": "pi{A,B}(q) & pi{B,C}(q) & pi{A,B}(q)",
    }
    scenarios = []
    for name in sorted(goals):
        goal = parse_expression(goals[name], q_schema)
        scenarios.append(
            _time_scenario(
                name,
                lambda goal=goal: seed_closure_contains(generators, goal),
                lambda goal=goal: closure_contains(generators, goal),
                repeats,
            )
        )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


def bench_equivalence(repeats: int, smoke: bool = False) -> Dict[str, object]:
    """Experiment E5 — view equivalence (Theorem 2.4.12)."""

    schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=17)
    q_schema = DatabaseSchema([RelationName("q", "ABC")])
    split = View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("lam", "ABC"),
            )
        ],
        q_schema,
    )

    pairs = {}
    for members in (1, 2):
        first, second = equivalent_view_pair(
            schema, members=members, atoms_per_query=2, seed=members
        )
        pairs[f"equivalent_m{members}"] = (first, second)
        base = random_view(schema, members=members, atoms_per_query=2, seed=members + 40)
        pairs[f"non_equivalent_m{members}"] = (base, perturbed_view(base, seed=members + 41))
    pairs["example_3_1_5"] = (split, joined)

    scenarios = []
    for name in sorted(pairs):
        first, second = pairs[name]
        scenarios.append(
            _time_scenario(
                name,
                lambda a=first, b=second: seed_views_equivalent(a, b),
                lambda a=first, b=second: views_equivalent(a, b),
                repeats,
            )
        )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


def bench_redundancy(repeats: int, smoke: bool = False) -> Dict[str, object]:
    """Experiment E6 — redundancy elimination (Theorem 3.1.4)."""

    schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=5)
    base = random_view(schema, members=2, atoms_per_query=2, seed=31)
    scenarios = []
    for extra in (0, 1, 2):
        padded = redundant_view(base, extra_members=extra, seed=32) if extra else base
        queries = padded.defining_queries
        scenarios.append(
            _time_scenario(
                f"remove_redundancy_extra{extra}",
                lambda qs=queries: len(seed_remove_redundancy_queries(list(qs))),
                lambda qs=queries: len(nonredundant_query_set(list(qs))),
                repeats,
            )
        )
    # The view-level API end to end, as bench_redundancy measures it.
    padded2 = redundant_view(base, extra_members=2, seed=32)
    scenarios.append(
        _time_scenario(
            "remove_redundancy_view_api",
            lambda: len(seed_remove_redundancy_queries(list(padded2.defining_queries))),
            lambda: len(remove_redundancy(padded2)),
            repeats,
        )
    )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


def bench_large_membership(repeats: int, smoke: bool = False) -> Dict[str, object]:
    """PR-2 cold-path scale-up — deep-join instances and scheme prechecks.

    The bundled paper-scale scenarios are microscopic, so PR 1's cold runs
    sat at parity.  These instances are where cold wins: goals of 12–14 join
    atoms over 8-relation schemas.  The ``hopeless`` scenarios additionally
    exercise :func:`repro.views.closure.construction_feasible` — every
    generator projects away a goal target attribute, so the optimised engine
    refutes membership from the schemes alone while the seed pays reduction
    and folding enumeration first.
    """

    schema = random_schema(SchemaSpec(relations=8, arity=3, universe_size=10), seed=7)
    specs = [
        ("hopeless_deep12", dict(generator_count=5, generator_atoms=4, goal_atoms=12, hopeless=True), 1),
        ("hopeless_deep12b", dict(generator_count=5, generator_atoms=4, goal_atoms=12, hopeless=True), 2),
        ("hopeless_deep14", dict(generator_count=6, generator_atoms=4, goal_atoms=14, hopeless=True), 1),
        ("hopeless_deep14b", dict(generator_count=6, generator_atoms=4, goal_atoms=14, hopeless=True), 2),
        ("derivable_deep12", dict(generator_count=5, generator_atoms=4, goal_atoms=12, hopeless=False), 1),
        ("derivable_deep10", dict(generator_count=4, generator_atoms=3, goal_atoms=10, hopeless=False), 1),
    ]
    if smoke:
        # CI keeps large-instance cold scenarios of both flavours alive.
        specs = [specs[0], specs[2], specs[4]]
    scenarios = []
    for name, kwargs, seed in specs:
        generators, goal = cold_membership_instance(schema, seed=seed, **kwargs)
        scenarios.append(
            _time_scenario(
                name,
                lambda g=generators, q=goal: seed_closure_contains(g, q),
                lambda g=generators, q=goal: closure_contains(g, q),
                repeats,
            )
        )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


def bench_catalog(repeats: int, smoke: bool = False) -> Dict[str, object]:
    """PR-2 batched catalog engine — signature dedup and parallel fan-out.

    The dedup scenarios compare the full pairwise dominance matrix of an
    N=16 catalog computed by the serial :class:`CatalogAnalyzer` (one
    decision per signature-class representative pair, broadcast to the
    class) against the seed engine deciding all ``N(N-1)`` pairs.  The
    parallel lanes then re-run the same cold batched job with 4 workers and
    record the honest wall-clock ratio next to the machine's CPU count —
    on a single-CPU container the ratio is ~1x (thread) and <1x (process
    startup); the lanes exist to verify bit-identical results and to let
    multi-core machines record real scaling in the same trajectory.
    """

    schema = random_schema(SchemaSpec(relations=4, arity=2, universe_size=5), seed=11)
    dedup_catalogs = {
        "catalog16_4classes": view_catalog(
            schema, classes=4, copies_per_class=4, members=2, atoms_per_query=2, seed=3
        ),
        "catalog16_2classes": view_catalog(
            schema, classes=2, copies_per_class=8, members=2, atoms_per_query=2, seed=5
        ),
    }
    if smoke:
        dedup_catalogs.pop("catalog16_2classes")

    def seed_matrix(catalog):
        return {
            (a, b): seed_dominates(catalog[a], catalog[b])
            for a in sorted(catalog)
            for b in sorted(catalog)
            if a != b
        }

    scenarios = []
    for name, catalog in dedup_catalogs.items():
        scenarios.append(
            _time_scenario(
                name,
                lambda c=catalog: seed_matrix(c),
                lambda c=catalog: CatalogAnalyzer(c).dominance_matrix(),
                repeats,
            )
        )

    # Parallel lanes: engine-vs-engine on a 16-view catalog of *distinct*
    # views (no dedup shortcut), cold each run, results cross-checked
    # bit-identical to serial.
    parallel_schema = random_schema(SchemaSpec(relations=5, arity=3, universe_size=7), seed=11)
    parallel_catalog = view_catalog(
        parallel_schema, classes=16, copies_per_class=1, members=2, atoms_per_query=3, seed=5
    )
    jobs = 4

    def engine_run(n_jobs: int, executor: str):
        return CatalogAnalyzer(
            parallel_catalog, jobs=n_jobs, executor=executor
        ).dominance_matrix()

    clear_caches()
    reference = engine_run(1, "thread")
    serial_s = _median_seconds(lambda: engine_run(1, "thread"), repeats, clear=True)
    executors = ["thread"] if smoke else ["thread", "process"]
    parallel = []
    n_views = len(parallel_catalog)
    representative_pairs = n_views * (n_views - 1)
    for executor in executors:
        clear_caches()
        identical = engine_run(jobs, executor) == reference
        parallel_s = _median_seconds(
            lambda e=executor: engine_run(jobs, e), repeats, clear=True
        )
        lane = {
            "name": f"catalog16_parallel_{executor}",
            "views": n_views,
            "jobs": jobs,
            "executor": executor,
            "cpus": os.cpu_count(),
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup_parallel": serial_s / max(parallel_s, 1e-9),
            "identical_to_serial": identical,
        }
        if executor == "process":
            # The chunked submission amortises per-task pickling/dispatch;
            # the trajectory records the chunk the auto-heuristic picked.
            lane["chunksize"] = process_chunksize(representative_pairs, jobs)
        parallel.append(lane)

    suite = {
        "scenarios": scenarios,
        "parallel": parallel,
        "cache": _tracked_cache_stats(),
        "all_parallel_identical": all(p["identical_to_serial"] for p in parallel),
    }
    suite.update(_suite_summary(scenarios))
    return suite


def bench_service(repeats: int, smoke: bool = False) -> Dict[str, object]:
    """PR-3 catalog service — sustained traffic with edits and deadlines.

    A seeded read/edit mix (:func:`repro.workloads.traffic_mix`) replays
    through a live :class:`repro.service.CatalogService` twice: **cold**
    (memo tables cleared) and **warm** (tables primed by the cold run).
    Each lane records throughput, latency percentiles, the deadline-miss
    rate (a seeded slice of reads carries unmeetable deadlines, so the
    refusal path is always exercised) and the edit stream's incremental
    decision-reuse ratio.  Every exact (``ok``) answer is recomputed on a
    fresh serial :class:`CatalogAnalyzer` built from the catalog snapshot of
    the version it was served at, and must match bit for bit —
    ``all_identical`` gates the harness exit status like the engine
    agreement checks do.

    The PR-4 **overload lanes** then replay one seeded mixed-deadline burst
    mix (:func:`repro.workloads.overload_mix`) twice from cold caches —
    once under the static-priority ``fifo`` scheduler, once under
    ``edf`` with expired-work shedding — and record the deadline-miss rate
    (split into missed-while-queued vs missed-while-computing), the shed
    rate and queue-wait percentiles of each.  The question set, catalog,
    policy and budgets are identical between the two, so the miss-rate gap
    (``edf_miss_below_fifo``) is attributable to the scheduling order
    alone; sheds are verified to be verdict-free refusals by the same
    replay harness.

    The PR-5 **subscription lanes** replay one edit-heavy mix three ways
    (base / push with delta subscribers / poll with per-client
    ``nonredundant_core`` requests after every edit) and record the
    delta-push latency percentiles, resync count, the fold verification
    result (deltas folded over the version-0 snapshot must reconstruct a
    fresh serial analyzer bit-identically at every version, with zero
    silent drops) and ``work_saved_ratio`` — server compute spent answering
    the injected polls divided by the total delta push cost for the same
    edit stream.

    The PR-7 **admission lanes** replay the *same* 600-event seed-43 burst
    mix under EDF with the conformal admission gate on — identical question
    set, catalog, policy and scheduler, so the deadline-miss delta against
    the plain EDF overload lane is attributable to the gate alone (doomed
    requests are refused at submission instead of expiring in the queue).
    A second lane adds an explicit unmeetable cohort
    (``unmeetable_fraction=0.15``) whose ground-truth tags score the gate's
    refusal precision and recall; stamped prediction intervals on completed
    answers yield the empirical coverage.  Unmeetable refusals are verified
    verdict-free by the same replay harness that checks sheds, so a
    verdict-carrying refusal fails ``all_identical``.

    The PR-6 **journal / recovery lanes** replay the base mix once per
    journal fsync policy (``off`` / ``batched`` / ``per_record``) from cold
    caches — the durability cost of journaling every committed edit inline
    — then time crash recovery from the batched journal (latest snapshot +
    folded deltas, the dominance matrix adopted without re-deciding a
    single pair) against a cold full re-analysis of the recovered catalog;
    the recovered analyzer must verify bit-identical.
    """

    schema = random_schema(SchemaSpec(relations=4, arity=2, universe_size=5), seed=29)
    catalog = view_catalog(
        schema, classes=3, copies_per_class=2, members=2, atoms_per_query=2, seed=19
    )
    requests = 24 if smoke else 80
    jobs = 2
    events = traffic_mix(
        schema,
        catalog,
        requests=requests,
        edit_rate=0.15,
        seed=41,
        deadline_s=30.0,
        tiny_deadline_fraction=0.1,
    )

    def lane_entry(name, lane, extra=None):
        verdict, elapsed = lane["verdict"], lane["elapsed_s"]
        m = lane["metrics"].to_dict()
        # Per-edit decision reuse: each applied edit's incremental
        # accounting, alongside the aggregate under "reuse".
        per_edit_reuse = [
            {
                "version": r.answer["version"],
                "reused": r.answer["decisions_reused"],
                "needed": r.answer["decisions_needed"],
            }
            for r in lane["responses"]
            if r.kind in ("add_view", "drop_view") and r.ok
        ]
        entry = {
            "name": name,
            "events": len(lane["responses"]),
            "jobs": jobs,
            "cpus": os.cpu_count(),
            "scheduler": m["scheduler"],
            "elapsed_s": elapsed,
            "throughput_rps": (m["served"] / elapsed) if elapsed > 0 else 0.0,
            "latency_p50_s": m["latency_p50_s"],
            "latency_p95_s": m["latency_p95_s"],
            "queue_wait_p50_s": m["queue_wait_p50_s"],
            "queue_wait_p95_s": m["queue_wait_p95_s"],
            "deadline_miss_rate": m["deadline_miss_rate"],
            "missed_in_queue": m["missed_in_queue"],
            "missed_computing": m["missed_computing"],
            "shed": m["shed"],
            "shed_rate": m["shed_rate"],
            "reuse": m["reuse"],
            "per_edit_reuse": per_edit_reuse,
            "served": m["served"],
            "refused": m["refused"],
            "coalesced": m["coalesced"],
            "edits": m["edits"],
            "verified": verdict["checked"],
            "shed_verified": verdict["shed"],
            "mismatches": len(verdict["mismatches"]),
        }
        if extra:
            entry.update(extra)
        return entry

    lanes = []
    all_identical = True
    clear_caches()
    for lane_name in ("cold", "warm"):
        lane = run_traffic(catalog, events, jobs=jobs)
        all_identical = all_identical and not lane["verdict"]["mismatches"]
        lanes.append(lane_entry(f"service_traffic_{lane_name}", lane))

    # Overload lanes: the same seeded burst mix, cold, under each scheduler,
    # with the one shared OVERLOAD_POLICY the CLI --overload lane also uses.
    # Not reduced for --smoke: the lanes take ~0.1 s each and a smaller
    # event count would shrink the backlog that makes the contrast visible.
    overload_events = overload_mix(schema, catalog, requests=600, seed=43)
    overload_rates = {}
    for scheduler in ("fifo", "edf"):
        clear_caches()
        lane = run_traffic(
            catalog,
            overload_events,
            jobs=jobs,
            scheduler=scheduler,
            policy=OVERLOAD_POLICY,
        )
        all_identical = all_identical and not lane["verdict"]["mismatches"]
        entry = lane_entry(f"service_overload_{scheduler}", lane, {"overload": True})
        overload_rates[scheduler] = entry["deadline_miss_rate"]
        lanes.append(entry)

    # Admission lanes (PR 7): same mix, same EDF scheduler, conformal gate
    # on — the miss-rate delta is the gate's doing; then the tagged-cohort
    # mix for precision/recall/coverage scoring.
    clear_caches()
    adm_lane = run_traffic(
        catalog,
        overload_events,
        jobs=jobs,
        scheduler="edf",
        policy=OVERLOAD_POLICY,
        admission="conformal",
    )
    adm_verdict = adm_lane["verdict"]["admission"]
    all_identical = all_identical and not adm_lane["verdict"]["mismatches"]
    adm_entry = lane_entry(
        "service_overload_edf_admission",
        adm_lane,
        {"overload": True, "admission_verdict": adm_verdict},
    )
    lanes.append(adm_entry)

    cohort_events = overload_mix(
        schema, catalog, requests=600, seed=43, unmeetable_fraction=0.15
    )
    clear_caches()
    cohort_lane = run_traffic(
        catalog,
        cohort_events,
        jobs=jobs,
        scheduler="edf",
        policy=OVERLOAD_POLICY,
        admission="conformal",
    )
    cohort_verdict = cohort_lane["verdict"]["admission"]
    all_identical = all_identical and not cohort_lane["verdict"]["mismatches"]
    lanes.append(
        lane_entry(
            "service_overload_admission_cohorts",
            cohort_lane,
            {"overload": True, "admission_verdict": cohort_verdict},
        )
    )

    admission = {
        "coverage": 0.9,
        "miss_rate_edf": overload_rates["edf"],
        "miss_rate_admission": adm_entry["deadline_miss_rate"],
        "miss_delta": overload_rates["edf"] - adm_entry["deadline_miss_rate"],
        "admission_miss_below_edf": (
            adm_entry["deadline_miss_rate"] < overload_rates["edf"]
        ),
        "refused_unmeetable": adm_verdict["refused_unmeetable"],
        "precision": adm_verdict["precision"],
        "cohort_refused_unmeetable": cohort_verdict["refused_unmeetable"],
        "cohort_precision": cohort_verdict["precision"],
        "cohort_recall": cohort_verdict["recall"],
        "empirical_coverage": cohort_verdict["coverage"],
        "empirical_coverage_lo": cohort_verdict["coverage_lo"],
        "interval_samples": cohort_verdict["interval_samples"],
    }

    # Tracing lanes (PR 8): the same seed-43 burst mix replayed from cold
    # caches with the tracer off and on, min-of-N each.  The off lane is the
    # untraced baseline (NULL_TRACER: one attribute check per guard, no
    # allocation); trace_overhead_ratio = traced / untraced wall-clock must
    # stay within 1.05 — the bench-gated budget for full span recording.
    # The traced run also re-verifies every completed request's stage chain
    # and that its spans tile the measured latency.
    trace_repeats = max(3, min(repeats, 5))
    off_times = []
    for _ in range(trace_repeats):
        clear_caches()
        lane = run_traffic(
            catalog,
            overload_events,
            jobs=jobs,
            scheduler="edf",
            policy=OVERLOAD_POLICY,
        )
        all_identical = all_identical and not lane["verdict"]["mismatches"]
        off_times.append(lane["elapsed_s"])
    on_times = []
    traced_lane = None
    for _ in range(trace_repeats):
        clear_caches()
        lane = run_traffic(
            catalog,
            overload_events,
            jobs=jobs,
            scheduler="edf",
            policy=OVERLOAD_POLICY,
            tracer=Tracer(),
        )
        all_identical = all_identical and not lane["verdict"]["mismatches"]
        on_times.append(lane["elapsed_s"])
        traced_lane = lane
    trace_verdict = traced_lane["trace"]["verdict"]
    all_identical = (
        all_identical
        and not trace_verdict["mismatches"]
        and not trace_verdict["structural_problems"]
    )
    trace_overhead_ratio = min(on_times) / max(min(off_times), 1e-9)
    tracing = {
        "repeats": trace_repeats,
        "events": len(overload_events),
        "untraced_min_s": min(off_times),
        "traced_min_s": min(on_times),
        "trace_overhead_ratio": trace_overhead_ratio,
        "trace_overhead_ok": trace_overhead_ratio <= 1.05,
        "spans": len(traced_lane["trace"]["spans"]),
        "checked": trace_verdict["checked"],
        "complete_chains": trace_verdict["complete_chains"],
        "coalesced_links": trace_verdict["coalesced_links"],
        "chain_mismatches": len(trace_verdict["mismatches"]),
        "structural_problems": len(trace_verdict["structural_problems"]),
        "breakdown": trace_breakdown(traced_lane["trace"]["spans"]),
    }

    # Sampling lanes (PR 10): the same burst mix with the tracer on *and*
    # the tail sampler deciding which boring traces to keep (head rate
    # 0.1).  sampler_overhead_ratio = sampled-traced / fully-traced
    # wall-clock (min-of-N each, reusing the tracing lanes' on-times as
    # the denominator): the sampler's own cost on top of tracing must stay
    # within 1.05 — and since a kept head rate of 0.1 skips most span
    # recording it is typically below 1.  The retention gate is the
    # tail-sampling contract: every interesting response (shed,
    # deadline-missed, refused) keeps its full trace; only boring ones may
    # be sampled out.
    samp_times = []
    sampled_lane = None
    for _ in range(trace_repeats):
        clear_caches()
        lane = run_traffic(
            catalog,
            overload_events,
            jobs=jobs,
            scheduler="edf",
            policy=OVERLOAD_POLICY,
            tracer=Tracer(),
            sampler=TailSampler(0.1),
        )
        all_identical = all_identical and not lane["verdict"]["mismatches"]
        samp_times.append(lane["elapsed_s"])
        sampled_lane = lane
    samp_verdict = sampled_lane["trace"]["verdict"]
    all_identical = (
        all_identical
        and not samp_verdict["mismatches"]
        and not samp_verdict["structural_problems"]
    )
    ledger = sampled_lane["trace"]["sampler"]
    kept_traces = {span.trace_id for span in sampled_lane["trace"]["spans"]}
    interesting = [
        response
        for response in sampled_lane["responses"]
        if response.trace_id is not None
        and (response.shed or response.deadline_missed or response.status == "refused")
    ]
    retained = sum(
        1 for response in interesting if response.trace_id in kept_traces
    )
    sampler_overhead_ratio = min(samp_times) / max(min(on_times), 1e-9)
    sampling = {
        "repeats": trace_repeats,
        "events": len(overload_events),
        "head_rate": ledger["head_rate"],
        "traced_min_s": min(on_times),
        "sampled_min_s": min(samp_times),
        "sampled_vs_untraced_ratio": min(samp_times) / max(min(off_times), 1e-9),
        "sampler_overhead_ratio": sampler_overhead_ratio,
        "sampler_overhead_ok": sampler_overhead_ratio <= 1.05,
        "ledger": ledger,
        "ledger_exact": (
            ledger["decisions"]
            == ledger["kept_interesting"] + ledger["kept_head"] + ledger["dropped"]
        ),
        "interesting_responses": len(interesting),
        "interesting_retained": retained,
        "retention_ok": retained == len(interesting),
        "sampled_out": samp_verdict["sampled_out"],
        "chain_mismatches": len(samp_verdict["mismatches"]),
        "structural_problems": len(samp_verdict["structural_problems"]),
    }

    # Subscription lanes (PR 5): the same edit-heavy seeded mix replayed
    # three ways from cold caches —
    #   base: no subscribers and no polls (the shared cost floor),
    #   push: S delta subscribers attached (the streaming layer pays one
    #         diff + fan-out per edit; every delta fold is verified
    #         bit-identical against fresh serial analyzers),
    #   poll: no subscribers, but after every edit each of the S "clients"
    #         submits a nonredundant_core request at a distinct priority
    #         (distinct coalesce keys — S independent pollers, the
    #         pre-subscription way of tracking the core).
    # The work comparison is computed from per-request accounting, not
    # lane wall-clocks: poll_compute_s sums the injected polls'
    # (latency - queue wait), push_total_s is the service's accumulated
    # diff+fan-out time; work_saved_ratio is their quotient.
    sub_requests = 30 if smoke else 80
    sub_subscribers = 6
    sub_events = traffic_mix(
        schema, catalog, requests=sub_requests, edit_rate=0.35, seed=47
    )
    specs = subscriber_mix(catalog, subscribers=sub_subscribers, seed=47)
    poll_events = []
    injected = []
    for event in sub_events:
        poll_events.append(event)
        if event.kind in ("add_view", "drop_view"):
            for client in range(sub_subscribers):
                injected.append(len(poll_events))
                poll_events.append(
                    TrafficEvent(kind="nonredundant_core", priority=10 + client)
                )

    clear_caches()
    base_lane = run_traffic(catalog, sub_events, jobs=jobs)
    all_identical = all_identical and not base_lane["verdict"]["mismatches"]
    lanes.append(lane_entry("service_subscription_base", base_lane))

    clear_caches()
    push_lane = run_traffic(catalog, sub_events, jobs=jobs, subscriber_specs=specs)
    sub_verdict = push_lane["subscriptions"]["verdict"]
    push_m = push_lane["metrics"].to_dict()["subscriptions"]
    all_identical = (
        all_identical
        and not push_lane["verdict"]["mismatches"]
        and not sub_verdict["mismatches"]
        and not sub_verdict["silent_drops"]
    )
    lanes.append(
        lane_entry(
            "service_subscription_push",
            push_lane,
            {
                "subscribers": sub_subscribers,
                "deltas_published": push_m["deltas_published"],
                "deltas_delivered": push_m["deltas_delivered"],
                "deltas_filtered": push_m["deltas_filtered"],
                "resyncs": push_m["resyncs"],
                "push_p50_s": push_m["push_p50_s"],
                "push_p95_s": push_m["push_p95_s"],
                "push_total_s": push_m["push_total_s"],
                "versions_fold_verified": sub_verdict["versions_checked"],
                "fold_mismatches": len(sub_verdict["mismatches"]),
                "silent_drops": sub_verdict["silent_drops"],
            },
        )
    )

    clear_caches()
    poll_lane = run_traffic(catalog, poll_events, jobs=jobs)
    all_identical = all_identical and not poll_lane["verdict"]["mismatches"]
    poll_responses = poll_lane["responses"]
    poll_compute_s = sum(
        max(0.0, poll_responses[i].latency_s - poll_responses[i].waited_s)
        for i in injected
    )
    push_total_s = push_m["push_total_s"]
    work_saved_ratio = poll_compute_s / push_total_s if push_total_s > 0 else 0.0
    lanes.append(
        lane_entry(
            "service_subscription_poll",
            poll_lane,
            {
                "subscribers": sub_subscribers,
                "injected_polls": len(injected),
                "poll_compute_s": poll_compute_s,
            },
        )
    )

    # Journal / recovery lanes (PR 6): the base traffic mix replayed once
    # per journal fsync policy from cold caches — the durability cost of
    # journaling every committed edit inline (off / batched / per_record) —
    # then crash recovery from the batched journal (latest snapshot +
    # folded deltas, adopted without re-deciding any dominance pair) timed
    # against a cold full re-analysis of the same recovered catalog.  The
    # recovered analyzer is verified bit-identical to the fresh one and
    # gates ``all_identical`` like every other agreement check.
    journal_dir = tempfile.mkdtemp(prefix="repro-bench-journal-")
    fsync_lanes = []
    recover_path = None
    for fsync_policy in ("off", "batched", "per_record"):
        path = os.path.join(journal_dir, f"journal_{fsync_policy}.jsonl")
        journal = DeltaJournal(path, fsync=fsync_policy, snapshot_every=16)
        clear_caches()
        lane = run_traffic(catalog, events, jobs=jobs, journal=journal)
        all_identical = all_identical and not lane["verdict"]["mismatches"]
        stats = lane["journal"]
        fsync_lanes.append(
            {
                "fsync": fsync_policy,
                "elapsed_s": lane["elapsed_s"],
                "records": stats["records"],
                "bytes": stats["bytes"],
                "fsyncs": stats["fsyncs"],
            }
        )
        lanes.append(
            lane_entry(f"service_journal_{fsync_policy}", lane, {"journal": stats})
        )
        if fsync_policy == "batched":
            recover_path = path

    result = recover_service(recover_path)
    recovery_mismatches = result.verify()  # clears memo tables, fresh build
    all_identical = all_identical and not recovery_mismatches
    clear_caches()
    reanalysis_started = time.perf_counter()
    CatalogAnalyzer(dict(result.views), limits=result.limits).snapshot(
        result.version
    )
    cold_reanalysis_s = time.perf_counter() - reanalysis_started
    recovery = {
        "journal_path_records": result.records_read,
        "deltas_folded": result.deltas_folded,
        "snapshots_seen": result.snapshots_seen,
        "journal_bytes": result.journal_bytes,
        "recovered_version": result.version,
        "recovery_s": result.recovery_time_s,
        "cold_reanalysis_s": cold_reanalysis_s,
        "recovery_speedup": (
            cold_reanalysis_s / result.recovery_time_s
            if result.recovery_time_s > 0
            else 0.0
        ),
        "verify_mismatches": len(recovery_mismatches),
        "fsync_lanes": fsync_lanes,
    }

    subscription = {
        "subscribers": sub_subscribers,
        "deltas_published": push_m["deltas_published"],
        "resyncs": push_m["resyncs"],
        "push_p50_s": push_m["push_p50_s"],
        "push_p95_s": push_m["push_p95_s"],
        "push_total_s": push_total_s,
        "poll_compute_s": poll_compute_s,
        "injected_polls": len(injected),
        "work_saved_ratio": work_saved_ratio,
        "versions_fold_verified": sub_verdict["versions_checked"],
        "fold_mismatches": len(sub_verdict["mismatches"]),
        "silent_drops": sub_verdict["silent_drops"],
    }

    return {
        "lanes": lanes,
        "cache": _tracked_cache_stats(),
        "all_identical": all_identical,
        "overload_miss_rates": overload_rates,
        "edf_miss_below_fifo": overload_rates["edf"] < overload_rates["fifo"],
        "admission": admission,
        "tracing": tracing,
        "sampling": sampling,
        "subscription": subscription,
        "recovery": recovery,
    }


SUITES = {
    "membership": bench_membership,
    "equivalence": bench_equivalence,
    "redundancy": bench_redundancy,
    "large_membership": bench_large_membership,
    "catalog": bench_catalog,
    "service": bench_service,
}


def run(repeats: int, smoke: bool) -> Dict[str, object]:
    suites: Dict[str, object] = {}
    for name, runner in SUITES.items():
        clear_caches()
        print(f"[bench] running suite: {name} (repeats={repeats})")
        suites[name] = runner(repeats, smoke)
        summary = suites[name]
        if "median_speedup_cold" in summary:
            print(
                f"[bench]   median speedup over seed: "
                f"cold {summary['median_speedup_cold']:.1f}x, "
                f"warm {summary['median_speedup_warm']:.1f}x, "
                f"agree={summary['all_agree']}"
            )
        for lane in summary.get("parallel", ()):
            print(
                f"[bench]   parallel {lane['executor']} x{lane['jobs']} "
                f"({lane['cpus']} cpu): {lane['speedup_parallel']:.2f}x vs serial, "
                f"identical={lane['identical_to_serial']}"
            )
        for lane in summary.get("lanes", ()):
            print(
                f"[bench]   {lane['name']}: {lane['throughput_rps']:.0f} req/s, "
                f"p50 {lane['latency_p50_s'] * 1000:.2f}ms, "
                f"p95 {lane['latency_p95_s'] * 1000:.2f}ms, "
                f"miss-rate {lane['deadline_miss_rate']:.3f} "
                f"({lane['missed_in_queue']}q/{lane['missed_computing']}c), "
                f"shed {lane['shed']}, "
                f"reuse {lane['reuse']['rate']:.3f}, "
                f"verified {lane['verified']} ({lane['mismatches']} mismatches)"
            )
        if "overload_miss_rates" in summary:
            rates = summary["overload_miss_rates"]
            print(
                f"[bench]   overload: fifo miss-rate {rates['fifo']:.3f} vs "
                f"edf {rates['edf']:.3f} "
                f"(edf below: {summary['edf_miss_below_fifo']})"
            )
        if "admission" in summary:
            adm = summary["admission"]
            fmt = lambda v: "n/a" if v is None else f"{v:.3f}"
            print(
                f"[bench]   admission: miss-rate edf {adm['miss_rate_edf']:.3f} "
                f"vs conformal {adm['miss_rate_admission']:.3f} "
                f"(below: {adm['admission_miss_below_edf']}); refused "
                f"{adm['refused_unmeetable']} @ precision "
                f"{fmt(adm['precision'])}; cohort precision "
                f"{fmt(adm['cohort_precision'])}, recall "
                f"{fmt(adm['cohort_recall'])}, coverage "
                f"{fmt(adm['empirical_coverage'])} two-sided / "
                f"{fmt(adm['empirical_coverage_lo'])} lower-bound over "
                f"{adm['interval_samples']} intervals"
            )
        if "tracing" in summary:
            tr = summary["tracing"]
            print(
                f"[bench]   tracing: overhead ratio "
                f"{tr['trace_overhead_ratio']:.3f} "
                f"(traced {tr['traced_min_s'] * 1000:.1f}ms vs untraced "
                f"{tr['untraced_min_s'] * 1000:.1f}ms, ok="
                f"{tr['trace_overhead_ok']}); {tr['spans']} spans, "
                f"{tr['complete_chains']}/{tr['checked']} chains tile the "
                f"latency ({tr['chain_mismatches']} mismatches, "
                f"{tr['structural_problems']} structural)"
            )
        if "sampling" in summary:
            sp = summary["sampling"]
            print(
                f"[bench]   sampling: overhead ratio "
                f"{sp['sampler_overhead_ratio']:.3f} "
                f"(ok={sp['sampler_overhead_ok']}); kept "
                f"{sp['ledger']['kept']} of {sp['ledger']['decisions']} "
                f"traces ({sp['sampled_out']} sampled out), retained "
                f"{sp['interesting_retained']}/{sp['interesting_responses']} "
                f"interesting (ok={sp['retention_ok']}, ledger exact="
                f"{sp['ledger_exact']})"
            )
        if "subscription" in summary:
            sub = summary["subscription"]
            print(
                f"[bench]   subscription: {sub['deltas_published']} deltas to "
                f"{sub['subscribers']} subscribers, push p50 "
                f"{sub['push_p50_s'] * 1000:.2f}ms p95 "
                f"{sub['push_p95_s'] * 1000:.2f}ms, {sub['resyncs']} resyncs; "
                f"poll work {sub['poll_compute_s'] * 1000:.1f}ms vs push "
                f"{sub['push_total_s'] * 1000:.1f}ms "
                f"(saved {sub['work_saved_ratio']:.1f}x); folds verified at "
                f"{sub['versions_fold_verified']} versions "
                f"({sub['fold_mismatches']} mismatches, "
                f"{sub['silent_drops']} drops)"
            )
        if "recovery" in summary:
            rec = summary["recovery"]
            fsync_costs = ", ".join(
                f"{lane['fsync']} {lane['elapsed_s'] * 1000:.1f}ms"
                f"/{lane['fsyncs']} fsyncs"
                for lane in rec["fsync_lanes"]
            )
            print(
                f"[bench]   recovery: {rec['deltas_folded']} deltas folded over "
                f"snapshot in {rec['recovery_s'] * 1000:.2f}ms vs cold "
                f"re-analysis {rec['cold_reanalysis_s'] * 1000:.2f}ms "
                f"({rec['recovery_speedup']:.1f}x, "
                f"{rec['verify_mismatches']} verify mismatches); "
                f"fsync cost: {fsync_costs}"
            )
    summary_block = {}
    for name in suites:
        entry: Dict[str, object] = {}
        if "median_speedup_cold" in suites[name]:
            entry["median_speedup_cold"] = suites[name]["median_speedup_cold"]
            entry["median_speedup_warm"] = suites[name]["median_speedup_warm"]
            entry["all_agree"] = suites[name]["all_agree"]
        if "parallel" in suites[name]:
            entry["parallel"] = {
                lane["name"]: round(lane["speedup_parallel"], 3)
                for lane in suites[name]["parallel"]
            }
            entry["all_parallel_identical"] = suites[name]["all_parallel_identical"]
        if "lanes" in suites[name]:
            entry["service"] = {
                lane["name"]: {
                    "throughput_rps": round(lane["throughput_rps"], 1),
                    "latency_p50_s": round(lane["latency_p50_s"], 6),
                    "latency_p95_s": round(lane["latency_p95_s"], 6),
                    "deadline_miss_rate": round(lane["deadline_miss_rate"], 4),
                    "shed_rate": round(lane["shed_rate"], 4),
                    "reuse_rate": round(lane["reuse"]["rate"], 4),
                }
                for lane in suites[name]["lanes"]
            }
            entry["all_identical"] = suites[name]["all_identical"]
            if "overload_miss_rates" in suites[name]:
                entry["overload_miss_rates"] = suites[name]["overload_miss_rates"]
                entry["edf_miss_below_fifo"] = suites[name]["edf_miss_below_fifo"]
            if "admission" in suites[name]:
                adm = suites[name]["admission"]
                entry["admission"] = {
                    "miss_rate_edf": round(adm["miss_rate_edf"], 4),
                    "miss_rate_admission": round(adm["miss_rate_admission"], 4),
                    "miss_delta": round(adm["miss_delta"], 4),
                    "admission_miss_below_edf": adm["admission_miss_below_edf"],
                    "precision": adm["precision"],
                    "cohort_precision": adm["cohort_precision"],
                    "cohort_recall": adm["cohort_recall"],
                    "empirical_coverage": adm["empirical_coverage"],
                    "empirical_coverage_lo": adm["empirical_coverage_lo"],
                }
            if "tracing" in suites[name]:
                tr = suites[name]["tracing"]
                entry["tracing"] = {
                    "trace_overhead_ratio": round(tr["trace_overhead_ratio"], 4),
                    "trace_overhead_ok": tr["trace_overhead_ok"],
                    "spans": tr["spans"],
                    "complete_chains": tr["complete_chains"],
                    "chain_mismatches": tr["chain_mismatches"],
                    "structural_problems": tr["structural_problems"],
                }
            if "sampling" in suites[name]:
                sp = suites[name]["sampling"]
                entry["sampling"] = {
                    "sampler_overhead_ratio": round(
                        sp["sampler_overhead_ratio"], 4
                    ),
                    "sampler_overhead_ok": sp["sampler_overhead_ok"],
                    "retention_ok": sp["retention_ok"],
                    "ledger_exact": sp["ledger_exact"],
                    "interesting_retained": sp["interesting_retained"],
                    "interesting_responses": sp["interesting_responses"],
                    "sampled_out": sp["sampled_out"],
                }
            if "subscription" in suites[name]:
                sub = suites[name]["subscription"]
                entry["subscription"] = {
                    "push_p50_s": round(sub["push_p50_s"], 6),
                    "push_p95_s": round(sub["push_p95_s"], 6),
                    "deltas_published": sub["deltas_published"],
                    "resyncs": sub["resyncs"],
                    "work_saved_ratio": round(sub["work_saved_ratio"], 3),
                    "fold_mismatches": sub["fold_mismatches"],
                    "silent_drops": sub["silent_drops"],
                }
            if "recovery" in suites[name]:
                rec = suites[name]["recovery"]
                entry["recovery"] = {
                    "recovery_s": round(rec["recovery_s"], 6),
                    "cold_reanalysis_s": round(rec["cold_reanalysis_s"], 6),
                    "recovery_speedup": round(rec["recovery_speedup"], 3),
                    "deltas_folded": rec["deltas_folded"],
                    "journal_bytes": rec["journal_bytes"],
                    "verify_mismatches": rec["verify_mismatches"],
                    "fsync": {
                        lane["fsync"]: {
                            "elapsed_s": round(lane["elapsed_s"], 6),
                            "fsyncs": lane["fsyncs"],
                        }
                        for lane in rec["fsync_lanes"]
                    },
                }
        summary_block[name] = entry
    report = {
        "schema_version": 8,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "config": {"repeats": repeats, "smoke": smoke},
        "suites": suites,
        "summary": summary_block,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="fewer repeats, for CI")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        default=os.path.join(_ROOT, "BENCH_perf.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--history",
        default=os.path.join(_ROOT, "BENCH_history.jsonl"),
        help="append this run's tracked metrics here (empty string to skip)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (SMOKE_REPEATS if args.smoke else DEFAULT_REPEATS)

    report = run(repeats, args.smoke)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.output}")
    if args.history:
        from history import append_history, git_revision

        entry = append_history(report, args.history, git_rev=git_revision(_ROOT))
        print(
            f"[bench] appended {len(entry['metrics'])} tracked metric(s) to "
            f"{args.history} (rev {entry['git_rev'] or '?'}); compare with "
            "`repro bench-history`"
        )

    if not all(entry.get("all_agree", True) for entry in report["summary"].values()):
        print("[bench] ERROR: seed and optimised engines disagreed", file=sys.stderr)
        return 1
    if not all(
        entry.get("all_parallel_identical", True)
        for entry in report["summary"].values()
    ):
        print(
            "[bench] ERROR: parallel catalog results were not bit-identical to serial",
            file=sys.stderr,
        )
        return 1
    if not all(
        entry.get("all_identical", True) for entry in report["summary"].values()
    ):
        print(
            "[bench] ERROR: service answers were not bit-identical to a fresh "
            "serial CatalogAnalyzer on the same catalog state",
            file=sys.stderr,
        )
        return 1
    if not all(
        entry.get("tracing", {}).get("trace_overhead_ok", True)
        for entry in report["summary"].values()
    ):
        print(
            "[bench] ERROR: tracing overhead exceeded the 1.05x budget "
            "(trace_overhead_ratio gate)",
            file=sys.stderr,
        )
        return 1
    if not all(
        entry.get("sampling", {}).get("sampler_overhead_ok", True)
        for entry in report["summary"].values()
    ):
        print(
            "[bench] ERROR: tail sampling overhead exceeded the 1.05x budget "
            "(sampler_overhead_ratio gate)",
            file=sys.stderr,
        )
        return 1
    if not all(
        entry.get("sampling", {}).get("retention_ok", True)
        and entry.get("sampling", {}).get("ledger_exact", True)
        for entry in report["summary"].values()
    ):
        print(
            "[bench] ERROR: tail sampler dropped an interesting trace or "
            "its ledger does not balance (retention gate)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
