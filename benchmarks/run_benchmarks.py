"""Lightweight timing harness: the machine-readable perf trajectory.

Runs the scenarios of the ``bench_membership``, ``bench_equivalence`` and
``bench_redundancy`` suites against both engines —

* **seed** — the preserved pre-optimisation implementations
  (:mod:`repro.baselines.seed_engine`), and
* **optimised** — the indexed + memoized engine, measured twice: *cold*
  (memo tables cleared before every run) and *warm* (tables primed, the
  steady state of multi-scenario traffic) —

cross-checks that both engines agree on every answer, and writes
``BENCH_perf.json`` at the repository root: median wall-times, speedups
over the seed, and memo-table hit rates.  Every PR from this one onward
appends to that trajectory; CI runs ``--smoke`` to keep the file fresh.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--smoke]
        [--repeats N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Callable, Dict, List

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines.seed_engine import (  # noqa: E402
    seed_closure_contains,
    seed_remove_redundancy_queries,
    seed_views_equivalent,
)
from repro.perf import cache_stats, clear_caches  # noqa: E402
from repro.relalg import parse_expression  # noqa: E402
from repro.relational import DatabaseSchema, RelationName  # noqa: E402
from repro.views import (  # noqa: E402
    View,
    closure_contains,
    named_generators,
    remove_redundancy,
    views_equivalent,
)
from repro.views.redundancy import nonredundant_query_set  # noqa: E402
from repro.workloads import (  # noqa: E402
    SchemaSpec,
    equivalent_view_pair,
    perturbed_view,
    random_schema,
    random_view,
    redundant_view,
)

DEFAULT_REPEATS = 7
SMOKE_REPEATS = 3

#: Memo tables whose hit rates the trajectory records.
TRACKED_TABLES = (
    "hom.has_homomorphism",
    "reduction.reduce_template",
    "closure.find_construction",
)


def _median_seconds(fn: Callable[[], object], repeats: int, *, clear: bool) -> float:
    times: List[float] = []
    for _ in range(repeats):
        if clear:
            clear_caches()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _time_scenario(
    name: str,
    seed_fn: Callable[[], object],
    optimised_fn: Callable[[], object],
    repeats: int,
) -> Dict[str, object]:
    seed_answer = seed_fn()
    clear_caches()
    optimised_answer = optimised_fn()
    agree = seed_answer == optimised_answer

    seed_s = _median_seconds(seed_fn, repeats, clear=False)
    cold_s = _median_seconds(optimised_fn, repeats, clear=True)
    clear_caches()
    optimised_fn()  # prime the memo tables
    warm_s = _median_seconds(optimised_fn, repeats, clear=False)

    floor = 1e-9
    return {
        "name": name,
        "agree": agree,
        "seed_s": seed_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_cold": seed_s / max(cold_s, floor),
        "speedup_warm": seed_s / max(warm_s, floor),
    }


def _suite_summary(scenarios: List[Dict[str, object]]) -> Dict[str, object]:
    return {
        "median_speedup_cold": statistics.median(
            s["speedup_cold"] for s in scenarios
        ),
        "median_speedup_warm": statistics.median(
            s["speedup_warm"] for s in scenarios
        ),
        "all_agree": all(s["agree"] for s in scenarios),
    }


def _tracked_cache_stats() -> Dict[str, Dict[str, object]]:
    snapshot = cache_stats()
    return {
        name: {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "size": stats.size,
        }
        for name, stats in snapshot.items()
        if name in TRACKED_TABLES
    }


# ------------------------------------------------------------------- suites
def bench_membership(repeats: int) -> Dict[str, object]:
    """Experiment E4 — capacity membership (Theorem 2.4.11)."""

    q_schema = DatabaseSchema([RelationName("q", "ABC")])
    generators = named_generators(
        [
            parse_expression("pi{A,B}(q)", q_schema),
            parse_expression("pi{B,C}(q)", q_schema),
        ]
    )
    goals = {
        "k1_projection": "pi{A}(q)",
        "k2_join": "pi{A,B}(q) & pi{B,C}(q)",
        "k1_negative": "pi{A,C}(q)",
        "k2_negative": "q",
        "k3_negative": "pi{A,B}(q) & pi{B,C}(q) & pi{A,C}(q)",
        "k3_positive": "pi{A,B}(q) & pi{B,C}(q) & pi{A,B}(q)",
    }
    scenarios = []
    for name in sorted(goals):
        goal = parse_expression(goals[name], q_schema)
        scenarios.append(
            _time_scenario(
                name,
                lambda goal=goal: seed_closure_contains(generators, goal),
                lambda goal=goal: closure_contains(generators, goal),
                repeats,
            )
        )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


def bench_equivalence(repeats: int) -> Dict[str, object]:
    """Experiment E5 — view equivalence (Theorem 2.4.12)."""

    schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=17)
    q_schema = DatabaseSchema([RelationName("q", "ABC")])
    split = View(
        [
            (parse_expression("pi{A,B}(q)", q_schema), RelationName("W1", "AB")),
            (parse_expression("pi{B,C}(q)", q_schema), RelationName("W2", "BC")),
        ],
        q_schema,
    )
    joined = View(
        [
            (
                parse_expression("pi{A,B}(q) & pi{B,C}(q)", q_schema),
                RelationName("lam", "ABC"),
            )
        ],
        q_schema,
    )

    pairs = {}
    for members in (1, 2):
        first, second = equivalent_view_pair(
            schema, members=members, atoms_per_query=2, seed=members
        )
        pairs[f"equivalent_m{members}"] = (first, second)
        base = random_view(schema, members=members, atoms_per_query=2, seed=members + 40)
        pairs[f"non_equivalent_m{members}"] = (base, perturbed_view(base, seed=members + 41))
    pairs["example_3_1_5"] = (split, joined)

    scenarios = []
    for name in sorted(pairs):
        first, second = pairs[name]
        scenarios.append(
            _time_scenario(
                name,
                lambda a=first, b=second: seed_views_equivalent(a, b),
                lambda a=first, b=second: views_equivalent(a, b),
                repeats,
            )
        )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


def bench_redundancy(repeats: int) -> Dict[str, object]:
    """Experiment E6 — redundancy elimination (Theorem 3.1.4)."""

    schema = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=5)
    base = random_view(schema, members=2, atoms_per_query=2, seed=31)
    scenarios = []
    for extra in (0, 1, 2):
        padded = redundant_view(base, extra_members=extra, seed=32) if extra else base
        queries = padded.defining_queries
        scenarios.append(
            _time_scenario(
                f"remove_redundancy_extra{extra}",
                lambda qs=queries: len(seed_remove_redundancy_queries(list(qs))),
                lambda qs=queries: len(nonredundant_query_set(list(qs))),
                repeats,
            )
        )
    # The view-level API end to end, as bench_redundancy measures it.
    padded2 = redundant_view(base, extra_members=2, seed=32)
    scenarios.append(
        _time_scenario(
            "remove_redundancy_view_api",
            lambda: len(seed_remove_redundancy_queries(list(padded2.defining_queries))),
            lambda: len(remove_redundancy(padded2)),
            repeats,
        )
    )
    suite = {"scenarios": scenarios, "cache": _tracked_cache_stats()}
    suite.update(_suite_summary(scenarios))
    return suite


SUITES = {
    "membership": bench_membership,
    "equivalence": bench_equivalence,
    "redundancy": bench_redundancy,
}


def run(repeats: int, smoke: bool) -> Dict[str, object]:
    suites: Dict[str, object] = {}
    for name, runner in SUITES.items():
        clear_caches()
        print(f"[bench] running suite: {name} (repeats={repeats})")
        suites[name] = runner(repeats)
        summary = suites[name]
        print(
            f"[bench]   median speedup over seed: "
            f"cold {summary['median_speedup_cold']:.1f}x, "
            f"warm {summary['median_speedup_warm']:.1f}x, "
            f"agree={summary['all_agree']}"
        )
    report = {
        "schema_version": 1,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "config": {"repeats": repeats, "smoke": smoke},
        "suites": suites,
        "summary": {
            name: {
                "median_speedup_cold": suites[name]["median_speedup_cold"],
                "median_speedup_warm": suites[name]["median_speedup_warm"],
                "all_agree": suites[name]["all_agree"],
            }
            for name in suites
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="fewer repeats, for CI")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        default=os.path.join(_ROOT, "BENCH_perf.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (SMOKE_REPEATS if args.smoke else DEFAULT_REPEATS)

    report = run(repeats, args.smoke)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.output}")

    if not all(entry["all_agree"] for entry in report["summary"].values()):
        print("[bench] ERROR: seed and optimised engines disagreed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
