"""Experiment E6 — redundancy elimination (Theorem 3.1.4, Example 3.1.5).

Series reported: time to detect and remove redundancy from views padded with
0-4 derivable defining queries, plus how many members survive.  The view
sizes in the test ids give the series of the experiment; the shrinking
``nonredundant size`` is printed by EXPERIMENTS.md's companion table.
"""

from __future__ import annotations

import pytest

from repro.views import is_nonredundant_view, remove_redundancy, views_equivalent
from repro.workloads import SchemaSpec, random_schema, random_view, redundant_view

SCHEMA = random_schema(SchemaSpec(relations=3, arity=2, universe_size=4), seed=5)
PADDING = [0, 1, 2]


@pytest.mark.parametrize("extra", PADDING)
def test_remove_redundancy(benchmark, extra):
    base = random_view(SCHEMA, members=2, atoms_per_query=2, seed=31)
    padded = redundant_view(base, extra_members=extra, seed=32) if extra else base

    def run():
        return remove_redundancy(padded)

    slim = benchmark(run)
    assert is_nonredundant_view(slim)
    assert views_equivalent(slim, padded)
    assert len(slim) <= len(padded)


@pytest.mark.parametrize("extra", PADDING)
def test_detect_nonredundancy(benchmark, extra):
    """Cost of the yes/no redundancy check alone."""

    base = random_view(SCHEMA, members=2, atoms_per_query=2, seed=33)
    padded = redundant_view(base, extra_members=extra, seed=34) if extra else base

    def run():
        return is_nonredundant_view(padded)

    result = benchmark(run)
    if extra == 0:
        assert result in (True, False)
    else:
        assert result is False
