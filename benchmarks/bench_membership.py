"""Experiment E4 — capacity membership: optimised search vs the paper's J_k enumeration.

This is the "who wins, by what factor" experiment.  The same membership
questions (Theorem 2.4.11) are decided by

* ``optimised`` — the folding-based construction search of
  :mod:`repro.views.closure`, and
* ``naive``     — the literal Lemma 2.4.9/2.4.10 enumeration of bounded
  templates over fixed symbol pools
  (:mod:`repro.baselines.naive_capacity`).

Both are exact on these instances (the test-suite asserts they agree); the
benchmark reports how the enumeration blows up as the goal query grows from
one to three tagged tuples while the optimised search stays flat.
"""

from __future__ import annotations

import pytest

from repro.baselines import NaiveSearchLimits, naive_closure_contains
from repro.relalg import parse_expression
from repro.views import closure_contains, named_generators

GOALS = {
    "k1_projection": ("pi{A}(q)", True),
    "k2_join": ("pi{A,B}(q) & pi{B,C}(q)", True),
    "k1_negative": ("pi{A,C}(q)", False),
    "k2_negative": ("q", False),
    "k3_negative": ("pi{A,B}(q) & pi{B,C}(q) & pi{A,C}(q)", False),
}


@pytest.fixture(scope="module")
def generators(q_schema):
    return named_generators(
        [
            parse_expression("pi{A,B}(q)", q_schema),
            parse_expression("pi{B,C}(q)", q_schema),
        ]
    )


@pytest.mark.parametrize("case", sorted(GOALS))
def test_membership_optimised(benchmark, q_schema, generators, case):
    text, expected = GOALS[case]
    goal = parse_expression(text, q_schema)

    def run():
        return closure_contains(generators, goal)

    assert benchmark(run) is expected


@pytest.mark.parametrize("case", sorted(GOALS))
def test_membership_naive_baseline(benchmark, q_schema, generators, case):
    text, expected = GOALS[case]
    goal = parse_expression(text, q_schema)
    limits = NaiveSearchLimits(max_templates=500_000)

    def run():
        return naive_closure_contains(generators, goal, limits)

    assert benchmark(run) is expected


def test_membership_optimised_three_atom_goal(benchmark, q_schema, generators):
    """A goal with three tagged tuples — still cheap for the optimised search."""

    goal = parse_expression("pi{A,B}(q) & pi{B,C}(q) & pi{A,B}(q)", q_schema)

    def run():
        return closure_contains(generators, goal)

    assert benchmark(run) is True
