"""Experiment E9 — the paper's worked examples, end to end.

Each benchmark re-runs one of the worked examples (Figure 1, Example 3.1.5,
Figure 2, the Section 4.1 decomposition, and the two realistic scenarios) and
asserts the claims the paper makes about it.  The timings show that the whole
reproduction runs at interactive speed on the paper's own inputs.
"""

from __future__ import annotations

import pytest

from repro.core import ViewAnalyzer
from repro.relalg import parse_expression
from repro.templates import reduce_template, substitute, templates_equivalent
from repro.views import (
    QueryCapacity,
    essential_connected_components,
    is_simplified_view,
    simplified_views_match,
    simplify_view,
    views_equivalent,
)
from repro.workloads import (
    company_scenario,
    example_2_2_2,
    example_3_1_5,
    example_3_2_1,
    section_4_1_example,
    university_scenario,
)


def test_figure_1_substitution(benchmark):
    example = example_2_2_2()

    def run():
        return substitute(example.outer, example.assignment).template

    template = benchmark(run)
    assert len(template) == 6


def test_example_3_1_5_equivalence_and_normal_form(benchmark):
    example = example_3_1_5()

    def run():
        equivalent = views_equivalent(example.joined_view, example.split_view)
        normal_form = simplify_view(example.joined_view)
        return equivalent, normal_form

    equivalent, normal_form = benchmark(run)
    assert equivalent
    assert simplified_views_match(normal_form, example.split_view)


def test_figure_2_essential_components(benchmark):
    example = example_3_2_1()

    def run():
        return essential_connected_components(example.t, example.generators)

    components = benchmark(run)
    assert components
    assert any(len(component) == 1 for component in components)


def test_figure_2_construction_realises_t(benchmark):
    example = example_3_2_1()

    def run():
        substituted = substitute(example.outer, example.assignment).template
        return templates_equivalent(substituted, reduce_template(example.t))

    assert benchmark(run)


def test_section_4_1_decomposition(benchmark):
    example = section_4_1_example()

    def run():
        return simplify_view(example.view)

    simplified = benchmark(run)
    assert is_simplified_view(simplified)
    assert len(simplified) > len(example.view)


def test_university_capacity_audit(benchmark):
    schema, view = university_scenario()
    capacity = QueryCapacity(view)
    hidden = parse_expression("pi{P,T}(Teaches & Meets)", schema)
    exposed = parse_expression("Meets", schema)

    def run():
        return capacity.contains(exposed), capacity.contains(hidden)

    exposed_ok, hidden_ok = benchmark(run)
    assert exposed_ok and not hidden_ok


def test_company_full_analysis(benchmark):
    _schema, view = company_scenario()

    def run():
        return ViewAnalyzer(view).analyze()

    report = benchmark(run)
    assert not report.is_nonredundant
    assert report.nonredundant_size == 2
