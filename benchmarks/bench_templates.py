"""Experiment E3 — the tableau toolkit (Algorithm 2.1.1, Propositions 2.4.1-2.4.4).

Series reported: cost of expression-to-template conversion, homomorphism /
equivalence checks and reduction, swept over the number of atoms in the
source expression.
"""

from __future__ import annotations

import pytest

from repro.templates import (
    has_homomorphism,
    is_expression_template,
    reduce_template,
    template_from_expression,
    templates_equivalent,
)
from repro.workloads import SchemaSpec, random_expression, random_schema

SCHEMA = random_schema(SchemaSpec(relations=4, arity=2, universe_size=5), seed=0)
ATOM_COUNTS = [2, 4, 8]


@pytest.mark.parametrize("atoms", ATOM_COUNTS)
def test_expression_to_template(benchmark, atoms):
    """Algorithm 2.1.1 conversion cost vs expression size."""

    expression = random_expression(SCHEMA, atoms=atoms, projection_probability=0.5, seed=atoms)
    template = benchmark(lambda: template_from_expression(expression))
    assert len(template) <= atoms


@pytest.mark.parametrize("atoms", ATOM_COUNTS)
def test_template_equivalence_check(benchmark, atoms):
    """Two-way homomorphism check between two equivalent realisations."""

    expression = random_expression(SCHEMA, atoms=atoms, projection_probability=0.5, seed=atoms)
    first = template_from_expression(expression)
    second = template_from_expression(expression)

    def run():
        assert templates_equivalent(first, second)

    benchmark(run)


@pytest.mark.parametrize("atoms", ATOM_COUNTS)
def test_template_reduction(benchmark, atoms):
    """Reduction (core computation) cost vs template size."""

    expression = random_expression(SCHEMA, atoms=atoms, projection_probability=0.3, seed=atoms + 100)
    template = template_from_expression(expression)
    reduced = benchmark(lambda: reduce_template(template))
    assert templates_equivalent(reduced, template)


@pytest.mark.parametrize("atoms", [2, 4, 8])
def test_expression_template_recognition(benchmark, atoms):
    """Cost of the Proposition 2.4.6 stand-in recogniser (reduce + parse + verify)."""

    expression = random_expression(SCHEMA, atoms=atoms, projection_probability=0.5, seed=atoms + 7)
    template = template_from_expression(expression)

    def run():
        assert is_expression_template(template)

    benchmark(run)


def test_homomorphism_negative_case(benchmark):
    """Cost of refuting a homomorphism (the expensive direction of containment)."""

    strong = template_from_expression(
        random_expression(SCHEMA, atoms=6, projection_probability=0.2, seed=55)
    )
    weak = template_from_expression(
        random_expression(SCHEMA, atoms=2, projection_probability=0.8, seed=56)
    )

    def run():
        return has_homomorphism(weak, strong), has_homomorphism(strong, weak)

    benchmark(run)
