"""Repository-level pytest configuration.

Ensures the ``src`` layout package is importable even when the project has
not been installed (useful in offline environments where ``pip install -e .``
cannot build an editable wheel: ``python setup.py develop`` or this path
fallback both work).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
