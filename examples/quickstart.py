#!/usr/bin/env python3
"""Quickstart: define a view, test query capacity, equivalence and normal form.

This walks through the paper's central notions on the running example of
Section 3.1.5: a single ternary relation ``q(A, B, C)`` and two views that
turn out to be equivalent even though they look different.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DatabaseSchema,
    RelationName,
    View,
    ViewAnalyzer,
    format_expression,
    parse_expression,
    views_equivalent,
)


def main() -> None:
    # ------------------------------------------------------------------ schema
    q = RelationName("q", "ABC")
    schema = DatabaseSchema([q])
    print("underlying schema :", schema)

    # ------------------------------------------------------------------- views
    # View V exposes one relation: the join of two projections of q.
    joined = parse_expression("pi{A,B}(q) & pi{B,C}(q)", schema)
    view_v = View([(joined, RelationName("lam", "ABC"))], schema)

    # View W exposes the two projections separately.
    s1 = parse_expression("pi{A,B}(q)", schema)
    s2 = parse_expression("pi{B,C}(q)", schema)
    view_w = View(
        [(s1, RelationName("lam1", "AB")), (s2, RelationName("lam2", "BC"))], schema
    )

    print("view V            :", view_v)
    print("view W            :", view_w)

    # --------------------------------------------------------- query capacity
    analyzer = ViewAnalyzer(view_w)
    probes = ["pi{A}(q)", "pi{A,B}(q) & pi{B,C}(q)", "q", "pi{A,C}(q)"]
    print("\nCan a user of W answer these database queries?  (Theorem 2.4.11)")
    for text in probes:
        probe = parse_expression(text, schema)
        answerable = analyzer.can_answer(probe)
        print(f"  {text:<28} -> {answerable}")
        if answerable:
            construction = analyzer.explain(probe)
            print(f"      rewriting over the view: {format_expression(construction.rewriting)}")

    # ------------------------------------------------------------- equivalence
    print("\nAre V and W equivalent?  (Theorem 2.4.12)")
    print("  views_equivalent(V, W) =", views_equivalent(view_v, view_w))

    # -------------------------------------------------------------- normal form
    print("\nSimplified normal form of V (Section 4):")
    simplified = ViewAnalyzer(view_v).simplified()
    for definition in simplified.definitions:
        print(f"  {definition.name.name}({definition.name.type}) := "
              f"{format_expression(definition.query)}")

    # ------------------------------------------------------------------ report
    print("\nFull analysis report for W:")
    for line in ViewAnalyzer(view_w).analyze().summary_lines():
        print(" ", line)


if __name__ == "__main__":
    main()
