#!/usr/bin/env python3
"""Access-control audit: what can view users really learn?

Section 3.1 of the paper discusses a database administrator's decree —
"casual users shall be capable of requesting every query save those which
return values for sensitive attributes such as salary" — and shows why view
mechanisms can only approximate such policies.  This example audits a
concrete HR schema: given the views handed to the intranet phone-book
application, which sensitive queries are (and are not) derivable?

Run with::

    python examples/access_control_audit.py
"""

from __future__ import annotations

from repro import (
    DatabaseSchema,
    QueryCapacity,
    RelationName,
    View,
    format_expression,
    parse_expression,
)


def build_schema() -> DatabaseSchema:
    """An HR schema: employees, departments and salary bands.

    Attributes: E(mployee), D(epartment), B(uilding), S(alary band), M(anager).
    """

    return DatabaseSchema(
        [
            RelationName("WorksIn", "ED"),
            RelationName("Located", "DB"),
            RelationName("Paid", "ES"),
            RelationName("Manages", "MD"),
        ]
    )


def build_public_view(schema: DatabaseSchema) -> View:
    """The view exposed to the phone-book app: no salary data, no raw tables."""

    return View(
        [
            (
                parse_expression("pi{E,B}(WorksIn & Located)", schema),
                RelationName("EmployeeBuilding", "BE"),
            ),
            (
                parse_expression("pi{E,D}(WorksIn)", schema),
                RelationName("EmployeeDepartment", "DE"),
            ),
            (
                parse_expression("pi{D,M}(Manages)", schema),
                RelationName("DepartmentManager", "DM"),
            ),
        ],
        schema,
    )


def main() -> None:
    schema = build_schema()
    view = build_public_view(schema)
    capacity = QueryCapacity(view)

    print("Schema :", schema)
    print("View   :")
    for definition in view.definitions:
        print(f"  {definition.name.name} := {format_expression(definition.query)}")

    audits = [
        ("employee phone-book lookup", "pi{E,B}(WorksIn & Located)", True),
        ("employee -> manager resolution", "pi{E,M}(WorksIn & Manages)", True),
        ("department -> building map", "pi{D,B}(WorksIn & Located)", None),
        ("anyone's salary band", "pi{E,S}(Paid)", False),
        ("salary bands per department", "pi{D,S}(WorksIn & Paid)", False),
        ("raw WorksIn table", "WorksIn", None),
    ]

    print("\nAudit: is each query inside the view's query capacity?")
    leaked = []
    for label, text, expected in audits:
        query = parse_expression(text, schema)
        answerable = capacity.contains(query)
        verdict = "ANSWERABLE" if answerable else "blocked"
        print(f"  {label:<35} {verdict}")
        if answerable:
            construction = capacity.explain(query)
            print(f"      via: {format_expression(construction.rewriting)}")
        if expected is not None and answerable != expected:
            leaked.append(label)

    # The audit's point: salary queries are provably outside the capacity —
    # not because of an access check, but because no composition of the view
    # relations can reconstruct them (Theorem 2.4.11 makes this decidable).
    assert not leaked, f"unexpected audit outcomes: {leaked}"
    print("\nAll salary queries are provably unanswerable through the view.")
    print("Note how 'employee -> manager' *is* derivable even though no view")
    print("exposes it directly (join EmployeeDepartment with DepartmentManager)")
    print("— exactly the kind of fact the capacity analysis surfaces before a")
    print("view is granted.")


if __name__ == "__main__":
    main()
