#!/usr/bin/env python3
"""View redesign: compare candidate views by query capacity, then normalise.

A common design situation from the paper's introduction: the registrar wants
to hand departmental advisers a view of the course database, and two teams
propose different view definitions.  Are the proposals interchangeable?  Is
either of them carrying redundant relations?  What is the canonical
(simplified) form both should converge to?

Run with::

    python examples/view_redesign.py
"""

from __future__ import annotations

from repro import (
    DatabaseSchema,
    RelationName,
    View,
    ViewAnalyzer,
    format_expression,
    parse_expression,
)
from repro.views import equivalence_report, nonredundant_size_bound, simplify_view


def registrar_schema() -> DatabaseSchema:
    """Attributes: S(tudent), C(ourse), P(rofessor), T(imeslot)."""

    return DatabaseSchema(
        [
            RelationName("Enrolled", "SC"),
            RelationName("Teaches", "PC"),
            RelationName("Meets", "CT"),
        ]
    )


def proposal_one(schema: DatabaseSchema) -> View:
    """Team 1: a single wide relation joining everything advisers may need."""

    wide = parse_expression("pi{S,C,P}(Enrolled & Teaches) & Meets", schema)
    return View([(wide, RelationName("AdviserWorkbench", "CPST"))], schema)


def proposal_two(schema: DatabaseSchema) -> View:
    """Team 2: narrow relations, one per question advisers actually ask."""

    return View(
        [
            (parse_expression("pi{S,C}(Enrolled)", schema), RelationName("StudentCourses", "CS")),
            (parse_expression("pi{C,P}(Teaches)", schema), RelationName("CourseProfessors", "CP")),
            (parse_expression("Meets", schema), RelationName("CourseTimes", "CT")),
            # A convenience relation that is derivable from the two above.
            (
                parse_expression("pi{S,P}(Enrolled & Teaches)", schema),
                RelationName("StudentProfessors", "PS"),
            ),
        ],
        schema,
    )


def main() -> None:
    schema = registrar_schema()
    one = proposal_one(schema)
    two = proposal_two(schema)

    print("Proposal 1 (wide):")
    for definition in one.definitions:
        print(f"  {definition.name.name} := {format_expression(definition.query)}")
    print("Proposal 2 (narrow):")
    for definition in two.definitions:
        print(f"  {definition.name.name} := {format_expression(definition.query)}")

    # ------------------------------------------------- capability comparison
    report = equivalence_report(one, two)
    print("\nDoes proposal 1 dominate proposal 2?", report.first_dominates_second.holds)
    if not report.first_dominates_second.holds:
        missing = [name.name for name in report.first_dominates_second.missing]
        print("  proposal 1 cannot answer:", ", ".join(missing))
    print("Does proposal 2 dominate proposal 1?", report.second_dominates_first.holds)
    print("Equivalent?", report.equivalent)

    # The wide workbench loses the ability to see enrolments of courses
    # without a professor and correlations the narrow view retains; the
    # analysis pinpoints exactly which defining queries fail.

    # ------------------------------------------------------ redundancy audit
    print("\nRedundancy audit of proposal 2 (Theorem 3.1.4):")
    analyzer = ViewAnalyzer(two)
    analysis = analyzer.analyze()
    for summary in analysis.definitions:
        flag = "redundant" if summary.redundant else "needed"
        print(f"  {summary.name:<18} {flag}")
    slim = analyzer.nonredundant()
    print(f"  -> nonredundant equivalent keeps {len(slim)} of {len(two)} relations "
          f"(bound from Lemma 3.1.6: {nonredundant_size_bound(two)})")

    # -------------------------------------------------------- normal form
    print("\nSimplified normal form of proposal 2 (Theorem 4.1.3):")
    simplified = simplify_view(two)
    for definition in simplified.definitions:
        print(f"  {definition.name.name}({definition.name.type}) := "
              f"{format_expression(definition.query)}")
    print("\nBecause the simplified view is unique up to renaming (Theorem 4.2.2),")
    print("it is the canonical artefact both teams can review and version.")


if __name__ == "__main__":
    main()
