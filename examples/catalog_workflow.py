#!/usr/bin/env python3
"""Catalogue workflow: analyse every view declared in a textual catalogue.

Teams that manage many views keep them in files; this example parses a small
catalogue (the same format ``repro.catalog`` serialises), runs the full
analysis on every declared view and prints a normalised catalogue in which
every view has been replaced by its simplified normal form.

Run with::

    python examples/catalog_workflow.py
"""

from __future__ import annotations

from repro.catalog import Catalog, parse_catalog, serialize_catalog
from repro.core import ViewAnalyzer
from repro.views import simplify_view, views_equivalent

CATALOGUE = """
# Order-management database and the views granted to two internal tools.
schema {
  Orders(O, C)        # order, customer
  Items(O, P)         # order, product
  Stock(P, W)         # product, warehouse
}

view Fulfilment {
  OrderProducts(O, P)    := Items
  ProductWarehouses(P, W) := Stock
  PickList(O, P, W)       := Items & Stock
}

view Analytics {
  CustomerProducts(C, P) := pi{C,P}(Orders & Items)
  OrderCustomers(C, O)   := Orders
}
"""


def main() -> None:
    catalog = parse_catalog(CATALOGUE)
    print("Parsed schema:", catalog.schema)

    normalised = {}
    for name, view in sorted(catalog.views.items()):
        print(f"\n=== view {name} ===")
        report = ViewAnalyzer(view).analyze()
        for line in report.summary_lines():
            print(" ", line)

        simplified = simplify_view(view)
        assert views_equivalent(simplified, view)
        normalised[name] = simplified
        if report.is_simplified and report.is_nonredundant:
            print("  already in normal form")
        else:
            print(f"  normal form has {len(simplified)} relation(s) "
                  f"(was {len(view)})")

    print("\n----- normalised catalogue -----")
    print(serialize_catalog(Catalog(schema=catalog.schema, views=normalised)))


if __name__ == "__main__":
    main()
